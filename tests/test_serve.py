"""Unit and integration tests for the serving subsystem (repro.serve)."""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import BinLayout
from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.perf.reference import (
    js_divergence_scalar,
    psi_scalar,
    score_batch_scalar,
)
from repro.persistence import save_segmentation, segmentation_reference
from repro.serve import (
    ModelRegistry,
    PredictionService,
    ServiceError,
    TrafficMonitors,
    compile_scorer,
    create_server,
    scorer_cache_clear,
)


def make_rule(x_lo, x_hi, y_lo, y_hi, *, x_closed=False, y_closed=False,
              rhs="A"):
    return ClusteredRule(
        "age", "salary",
        Interval(x_lo, x_hi, closed_high=x_closed),
        Interval(y_lo, y_hi, closed_high=y_closed),
        "group", rhs, support=0.1, confidence=0.9,
    )


@pytest.fixture()
def segmentation():
    return Segmentation.from_rules([
        make_rule(20, 40, 50_000, 100_000, y_closed=True),
        make_rule(60, 80, 25_000, 75_000, x_closed=True),
        make_rule(30, 70, 60_000, 80_000),  # overlaps the first rule
    ])


@pytest.fixture()
def model_dir(tmp_path, segmentation):
    directory = tmp_path / "models"
    directory.mkdir()
    save_segmentation(segmentation, directory / "groupA.json")
    return directory


# ----------------------------------------------------------------------
# Compiled scorer
# ----------------------------------------------------------------------
class TestCompiledScorer:
    def test_matches_scalar_reference_on_random_points(self, segmentation):
        rng = np.random.default_rng(17)
        xs = rng.uniform(0, 100, 4000)
        ys = rng.uniform(0, 160_000, 4000)
        scorer = compile_scorer(segmentation)
        assert np.array_equal(
            scorer.score_batch(xs, ys),
            score_batch_scalar(segmentation, xs, ys),
        )

    def test_closedness_at_boundaries(self, segmentation):
        scorer = compile_scorer(segmentation)
        # x = 40 leaves [20, 40) but sits inside the overlapping rule.
        assert scorer.score(39.999, 60_000) == 0
        assert scorer.score(40.0, 70_000) == 2
        # y = 100_000 is inside [50_000, 100_000] (closed above).
        assert scorer.score(25, 100_000.0) == 0
        assert scorer.score(25, 100_000.1) == -1
        # x = 80 is inside [60, 80] (closed above); just beyond is out.
        assert scorer.score(80.0, 50_000) == 1
        assert scorer.score(80.001, 50_000) == -1

    def test_first_matching_rule_wins_on_overlap(self, segmentation):
        # (35, 70_000) lies in rules 0 and 2; segmentation order decides.
        assert compile_scorer(segmentation).score(35, 70_000) == 0

    def test_membership_agrees_with_segmentation_covers(self, segmentation):
        rng = np.random.default_rng(23)
        xs = rng.uniform(0, 100, 1500)
        ys = rng.uniform(0, 160_000, 1500)
        scorer = compile_scorer(segmentation)
        assert np.array_equal(
            scorer.in_segment(xs, ys), segmentation.covers(xs, ys)
        )

    def test_explain_returns_the_fired_rule(self, segmentation):
        scorer = compile_scorer(segmentation)
        rule = scorer.explain(65, 50_000)
        assert rule == segmentation.rules[1]
        assert scorer.explain(5, 5_000) is None

    def test_empty_segmentation_scores_nothing(self):
        empty = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        scorer = compile_scorer(empty)
        out = scorer.score_batch(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert np.array_equal(out, [-1, -1])

    def test_rejects_nan(self, segmentation):
        scorer = compile_scorer(segmentation)
        with pytest.raises(ValueError, match="age"):
            scorer.score_batch(np.array([np.nan]), np.array([1.0]))
        with pytest.raises(ValueError, match="salary"):
            scorer.score_batch(np.array([1.0]), np.array([np.nan]))

    def test_rejects_mismatched_batches(self, segmentation):
        scorer = compile_scorer(segmentation)
        with pytest.raises(ValueError, match="differ"):
            scorer.score_batch(np.zeros(3), np.zeros(4))

    def test_compile_is_cached_per_segmentation_value(self, segmentation):
        scorer_cache_clear()
        first = compile_scorer(segmentation)
        assert compile_scorer(segmentation) is first
        # An equal-valued segmentation hits the same cache entry.
        clone = Segmentation.from_rules(list(segmentation.rules))
        assert compile_scorer(clone) is first

    def test_table_is_immutable(self, segmentation):
        scorer = compile_scorer(segmentation)
        with pytest.raises(ValueError):
            scorer.table[0, 0] = 5


# ----------------------------------------------------------------------
# Model registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_loads_and_resolves_by_name_and_id(self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        assert len(registry) == 1
        model = registry.resolve("groupA")
        assert registry.resolve(model.model_id) is model
        assert "groupA" in registry
        assert model.metadata["library_version"]

    def test_model_id_is_a_content_hash(self, model_dir, tmp_path,
                                        segmentation):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        original = registry.resolve("groupA")
        # The same bytes under another name get the same id.
        copy = model_dir / "alias.json"
        copy.write_bytes((model_dir / "groupA.json").read_bytes())
        registry.refresh()
        assert registry.resolve("alias").model_id == original.model_id

    def test_unknown_model_raises_with_catalogue(self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        with pytest.raises(KeyError, match="groupA"):
            registry.resolve("nope")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            ModelRegistry(tmp_path / "absent")

    def test_invalid_artefact_fails_startup_loudly(self, model_dir):
        (model_dir / "bad.json").write_text('{"format": "other"}')
        from repro.persistence import PersistenceError
        with pytest.raises(PersistenceError):
            ModelRegistry(model_dir, refresh_interval=0).load()

    def test_refresh_picks_up_changed_artefact(self, model_dir,
                                               segmentation):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        old = registry.resolve("groupA")
        replacement = Segmentation.from_rules([
            make_rule(0, 10, 0, 10)
        ])
        save_segmentation(replacement, model_dir / "groupA.json")
        assert registry.refresh()
        new = registry.resolve("groupA")
        assert new.model_id != old.model_id
        assert len(new.segmentation) == 1
        # The old model object keeps working for in-flight requests.
        assert compile_scorer(old.segmentation).score(25, 60_000) == 0

    def test_refresh_without_changes_reports_none(self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        assert not registry.refresh()

    def test_refresh_drops_removed_artefacts(self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        (model_dir / "groupA.json").unlink()
        assert registry.refresh()
        assert len(registry) == 0

    def test_refresh_keeps_previous_version_of_corrupt_file(
            self, model_dir, caplog):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        old = registry.resolve("groupA")
        (model_dir / "groupA.json").write_text("{not json")
        with caplog.at_level("WARNING", logger="repro.serve.registry"):
            registry.refresh()
        assert "keeping previous version" in caplog.text
        assert registry.resolve("groupA") is old

    def test_negative_interval_disables_maybe_refresh(self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=-1).load()
        (model_dir / "groupA.json").unlink()
        assert not registry.maybe_refresh()
        assert len(registry) == 1

    def test_refresh_survives_torn_partial_write(self, model_dir):
        """A writer caught mid-write (valid JSON prefix, truncated
        file) must not evict the healthy version already serving."""
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        old = registry.resolve("groupA")
        path = model_dir / "groupA.json"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn mid-artefact
        from repro.obs import metrics
        from repro.obs.metrics import MetricsRegistry

        counters = metrics.enable(MetricsRegistry())
        try:
            registry.refresh()
        finally:
            metrics.disable()
        assert registry.resolve("groupA") is old
        assert counters.counter("serve.reload_errors").value == 1
        # The writer finishes; the next refresh loads the new bytes.
        path.write_bytes(raw)
        registry.refresh()
        assert registry.resolve("groupA").model_id == old.model_id

    def test_refresh_survives_file_deleted_mid_scan(self, model_dir,
                                                    monkeypatch):
        """A file vanishing between the directory listing and the load
        keeps the previous healthy snapshot serving."""
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        old = registry.resolve("groupA")
        path = model_dir / "groupA.json"
        listed = [path]

        def scan_then_delete():
            path.unlink(missing_ok=True)  # racing writer wins
            return listed

        monkeypatch.setattr(
            registry, "_artefact_paths", scan_then_delete
        )
        registry.refresh()
        assert registry.resolve("groupA") is old

    def test_refresh_skips_brand_new_file_deleted_mid_scan(
            self, model_dir, monkeypatch):
        """A never-loaded artefact that vanishes mid-scan is skipped —
        no crash, no phantom entry."""
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        ghost = model_dir / "ghost.json"

        def scan_with_ghost():
            ghost.unlink(missing_ok=True)
            return sorted(model_dir.glob("*.json")) + [ghost]

        monkeypatch.setattr(
            registry, "_artefact_paths", scan_with_ghost
        )
        registry.refresh()
        assert len(registry) == 1
        assert "ghost" not in registry


# ----------------------------------------------------------------------
# Service endpoint logic (transport-free)
# ----------------------------------------------------------------------
class TestPredictionService:
    @pytest.fixture()
    def service(self, model_dir):
        return PredictionService(
            ModelRegistry(model_dir, refresh_interval=0).load()
        )

    def test_healthz(self, service):
        body = service.healthz()
        assert body["status"] == "ok"
        assert body["models"] == 1

    def test_models_lists_metadata(self, service):
        entry = service.models()["models"][0]
        assert entry["name"] == "groupA"
        assert entry["rhs_value"] == "A"
        assert entry["n_rules"] == 3
        assert "library_version" in entry["metadata"]

    def test_predict_inside_and_outside(self, service):
        inside = service.predict({"model": "groupA", "x": 25, "y": 60_000})
        assert inside["in_segment"] and inside["segment"] == "A"
        outside = service.predict({"model": "groupA", "x": 5, "y": 5_000})
        assert not outside["in_segment"]
        assert outside["segment"] is None and outside["rule"] is None

    def test_predict_batch_round_trips_json_types(self, service):
        body = service.predict_batch({
            "model": "groupA", "x": [25, 5], "y": [60_000, 5_000],
        })
        assert body["count"] == 2
        assert body["in_segment"] == [True, False]
        assert body["rule"] == [0, -1]
        json.dumps(body)  # must be JSON-serializable

    def test_explain_names_the_rule(self, service):
        body = service.explain({"model": "groupA", "x": 65, "y": 50_000})
        explanation = body["explanation"]
        assert explanation["index"] == 1
        assert "60 <= age <= 80" in explanation["text"]
        assert explanation["x_interval"]["closed_high"] is True
        missed = service.explain({"model": "groupA", "x": 5, "y": 5_000})
        assert missed["explanation"] is None

    def test_unknown_model_is_404(self, service):
        with pytest.raises(ServiceError) as exc:
            service.predict({"model": "ghost", "x": 1, "y": 2})
        assert exc.value.status == 404

    @pytest.mark.parametrize("payload", [
        {"x": 1, "y": 2},                                # no model
        {"model": "groupA", "y": 2},                     # no x
        {"model": "groupA", "x": "wide", "y": 2},        # non-numeric
        {"model": "groupA", "x": True, "y": 2},          # bool is not a number
    ])
    def test_bad_predict_payloads_are_400(self, service, payload):
        with pytest.raises(ServiceError) as exc:
            service.predict(payload)
        assert exc.value.status == 400

    @pytest.mark.parametrize("payload", [
        {"model": "groupA", "x": [1], "y": [2, 3]},      # length mismatch
        {"model": "groupA", "x": 1, "y": [2]},           # not a list
        {"model": "groupA", "x": [[1]], "y": [[2]]},     # not 1-D
        {"model": "groupA", "x": [float("nan")], "y": [2.0]},  # NaN
    ])
    def test_bad_batch_payloads_are_400(self, service, payload):
        with pytest.raises(ServiceError) as exc:
            service.predict_batch(payload)
        assert exc.value.status == 400

    def test_dispatch_maps_errors_to_statuses(self, service):
        status, body = service.dispatch("predict", {"model": "ghost",
                                                    "x": 1, "y": 2})
        assert status == 404 and "error" in body
        status, _ = service.dispatch("no-such-endpoint", {})
        assert status == 404

    def test_dispatch_records_metrics(self, service):
        from repro.obs import metrics as metrics_mod
        registry = metrics_mod.MetricsRegistry()
        metrics_mod.enable(registry)
        try:
            service.dispatch("predict",
                             {"model": "groupA", "x": 25, "y": 60_000})
            service.dispatch("predict", {"model": "ghost", "x": 1, "y": 2})
            snapshot = registry.snapshot()
        finally:
            metrics_mod.disable()
        assert snapshot["counters"]["serve.requests"] == 2
        assert snapshot["counters"]["serve.requests_predict"] == 2
        assert snapshot["counters"][
            'serve.request_errors{endpoint="predict"}'] == 1
        assert snapshot["histograms"][
            'serve.request_seconds{endpoint="predict"}']["count"] == 2

    def test_dispatch_records_labeled_series_per_endpoint(self, service):
        from repro.obs import metrics as metrics_mod
        registry = metrics_mod.MetricsRegistry()
        metrics_mod.enable(registry)
        try:
            service.dispatch("healthz", None)
            service.dispatch("predict", {"model": "ghost", "x": 1, "y": 2})
            snapshot = registry.snapshot()
        finally:
            metrics_mod.disable()
        histograms = snapshot["histograms"]
        assert histograms['serve.request_seconds{endpoint="healthz"}'][
            "count"] == 1
        assert histograms['serve.request_seconds{endpoint="predict"}'][
            "count"] == 1
        assert snapshot["counters"][
            'serve.request_errors{endpoint="predict"}'] == 1
        # The deprecated unlabeled twins are gone: only labeled series.
        assert "serve.request_seconds" not in histograms
        assert "serve.request_errors" not in snapshot["counters"]

    def test_metrics_endpoint_renders_prometheus(self, service):
        from repro.obs import metrics as metrics_mod
        from repro.obs.prometheus import parse_prometheus
        from repro.serve.service import TextResponse
        metrics_mod.enable(metrics_mod.MetricsRegistry())
        try:
            service.dispatch("predict",
                             {"model": "groupA", "x": 25, "y": 60_000})
            status, body = service.dispatch(
                "metrics", {"format": "prometheus"}
            )
        finally:
            metrics_mod.disable()
        assert status == 200 and isinstance(body, TextResponse)
        assert body.content_type.startswith("text/plain")
        families = parse_prometheus(body.text)
        latency = families["arcs_serve_request_seconds"]
        assert latency["kind"] == "histogram"
        buckets = [
            sample for sample in latency["samples"]
            if sample[0].endswith("_bucket")
            and sample[1].get("endpoint") == "predict"
        ]
        assert buckets and buckets[-1][1]["le"] == "+Inf"

    def test_metrics_endpoint_rejects_unknown_format(self, service):
        status, body = service.dispatch("metrics", {"format": "xml"})
        assert status == 400 and "format" in body["error"]

    def test_metrics_endpoint_prometheus_while_disabled(self, service):
        from repro.serve.service import TextResponse
        status, body = service.dispatch(
            "metrics", {"format": "prometheus"}
        )
        assert status == 200 and isinstance(body, TextResponse)
        assert "disabled" in body.text

    def test_profile_endpoint_returns_collapsed_stacks(self, service):
        from repro.serve.service import TextResponse
        status, body = service.dispatch("profile", {"seconds": "0.05"})
        assert status == 200 and isinstance(body, TextResponse)
        # Either folded "stack count" lines or the explicit empty marker.
        for line in body.text.strip().splitlines():
            if line.startswith("#"):
                continue
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    @pytest.mark.parametrize("seconds", ["0", "-1", "nan-ish"])
    def test_profile_endpoint_rejects_bad_seconds(self, service, seconds):
        status, body = service.dispatch("profile", {"seconds": seconds})
        assert status == 400 and "seconds" in body["error"]

    def test_metrics_survive_bookkeeping_failure(self, service):
        """Regression: a failure while recording the span/event must not
        lose the latency observation or flip the response."""
        from repro.obs import metrics as metrics_mod, tracing

        class ExplodingBuffer:
            def append(self, span):
                raise RuntimeError("ring buffer gone")

        registry = metrics_mod.MetricsRegistry()
        metrics_mod.enable(registry)
        tracing.enable()
        service.recent_spans = ExplodingBuffer()
        try:
            status, body = service.dispatch("healthz", None)
            snapshot = registry.snapshot()
        finally:
            tracing.disable()
            metrics_mod.disable()
        assert status == 200 and body["status"] == "ok"
        assert snapshot["histograms"][
            'serve.request_seconds{endpoint="healthz"}']["count"] == 1
        assert not any(
            name.startswith("serve.request_errors")
            for name in snapshot["counters"]
        )

    def test_dispatch_records_request_spans_when_tracing(self, service):
        from repro.obs import tracing
        tracing.enable()
        try:
            service.dispatch("healthz", None)
        finally:
            tracing.disable()
        assert [span.name for span in service.recent_spans] == [
            "serve.healthz"
        ]
        span = service.recent_spans[0]
        assert span.attributes["status"] == 200
        assert span.duration is not None


# ----------------------------------------------------------------------
# HTTP integration (real sockets, ephemeral port)
# ----------------------------------------------------------------------
@pytest.fixture()
def server(model_dir):
    server = create_server(model_dir, port=0, refresh_interval=0)
    server.serve_in_background()
    yield server
    server.shutdown()
    server.server_close()


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path,
                                    timeout=5) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _get_text(server, path, headers=None):
    request = urllib.request.Request(server.url + path,
                                     headers=headers or {})
    with urllib.request.urlopen(request, timeout=5) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestHTTPServer:
    def test_healthz_and_models(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = _get(server, "/models")
        assert status == 200
        assert body["models"][0]["name"] == "groupA"

    def test_predict_and_explain(self, server):
        status, body = _post(server, "/predict",
                             {"model": "groupA", "x": 25, "y": 60_000})
        assert status == 200 and body["in_segment"]
        status, body = _post(server, "/explain",
                             {"model": "groupA", "x": 25, "y": 60_000})
        assert status == 200 and body["explanation"]["index"] == 0

    def test_predict_batch(self, server):
        status, body = _post(server, "/predict_batch", {
            "model": "groupA", "x": [25, 5], "y": [60_000, 5_000],
        })
        assert status == 200
        assert body["in_segment"] == [True, False]

    def test_metrics_endpoint_reflects_registry_state(self, server):
        from repro.obs import metrics as metrics_mod
        status, body = _get(server, "/metrics")
        assert status == 200 and body["enabled"] is False
        metrics_mod.enable(metrics_mod.MetricsRegistry())
        try:
            _post(server, "/predict",
                  {"model": "groupA", "x": 25, "y": 60_000})
            status, body = _get(server, "/metrics")
        finally:
            metrics_mod.disable()
        assert body["enabled"] is True
        assert body["metrics"]["counters"]["serve.requests"] >= 1

    def test_prometheus_exposition_over_http(self, server):
        from repro.obs import metrics as metrics_mod
        from repro.obs.prometheus import parse_prometheus
        metrics_mod.enable(metrics_mod.MetricsRegistry())
        try:
            _post(server, "/predict",
                  {"model": "groupA", "x": 25, "y": 60_000})
            status, content_type, text = _get_text(
                server, "/metrics?format=prometheus"
            )
        finally:
            metrics_mod.disable()
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        families = parse_prometheus(text)  # must not raise
        assert "arcs_serve_requests_total" in families

    def test_prometheus_via_accept_header(self, server):
        from repro.obs import metrics as metrics_mod
        metrics_mod.enable(metrics_mod.MetricsRegistry())
        try:
            status, _, text = _get_text(
                server, "/metrics", headers={"Accept": "text/plain"}
            )
        finally:
            metrics_mod.disable()
        assert status == 200
        assert text.startswith("#") or "arcs_" in text
        # Explicit query parameter wins over the Accept header.
        status, body = _get(server, "/metrics?format=json")
        assert status == 200 and "enabled" in body

    def test_debug_profile_over_http(self, server):
        status, content_type, text = _get_text(
            server, "/debug/profile?seconds=0.05"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert text  # folded stacks or the empty-profile marker

    def test_error_statuses(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/predict", {"model": "ghost",
                                          "x": 1, "y": 2})[0] == 404
        assert _post(server, "/predict", {"model": "groupA"})[0] == 400
        request = urllib.request.Request(
            server.url + "/predict", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=5)
        assert exc.value.code == 400

    def test_hot_reload_swaps_models_between_requests(self, server,
                                                      model_dir):
        _, before = _post(server, "/predict",
                          {"model": "groupA", "x": 25, "y": 60_000})
        assert before["in_segment"]
        replacement = Segmentation.from_rules([make_rule(0, 10, 0, 10)])
        save_segmentation(replacement, model_dir / "groupA.json")
        _, after = _post(server, "/predict",
                         {"model": "groupA", "x": 25, "y": 60_000})
        assert not after["in_segment"]
        assert after["model"] != before["model"]

    def test_concurrent_requests_succeed(self, server):
        results = []

        def worker():
            results.append(_post(server, "/predict", {
                "model": "groupA", "x": 25, "y": 60_000,
            }))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(status == 200 and body["in_segment"]
                   for status, body in results)


# ----------------------------------------------------------------------
# Traffic monitoring (/stats, drift, coverage)
# ----------------------------------------------------------------------
def training_bin_array():
    """A populated training grid matching the test segmentation's
    attributes: mass concentrated where the rules live."""
    bin_array = BinArray(
        x_layout=BinLayout("age", np.linspace(0.0, 100.0, 11)),
        y_layout=BinLayout("salary", np.linspace(0.0, 160_000.0, 11)),
        rhs_encoding=CategoricalEncoding("group", ("A", "B")),
        target_code=0,
    )
    rng = np.random.default_rng(11)
    x = rng.uniform(20.0, 60.0, 600)
    y = rng.uniform(40_000.0, 110_000.0, 600)
    bin_array.add_chunk(
        bin_array.x_layout.assign(x),
        bin_array.y_layout.assign(y),
        np.zeros(600, dtype=np.int64),
    )
    return bin_array


@pytest.fixture()
def referenced_model_dir(tmp_path, segmentation):
    directory = tmp_path / "models"
    directory.mkdir()
    save_segmentation(segmentation, directory / "groupA.json",
                      bin_array=training_bin_array())
    return directory


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestTrafficMonitoring:
    @pytest.fixture()
    def clock(self):
        return FakeClock()

    @pytest.fixture()
    def service(self, referenced_model_dir, clock):
        return PredictionService(
            ModelRegistry(referenced_model_dir,
                          refresh_interval=0).load(),
            monitors=TrafficMonitors(window_seconds=30.0,
                                     window_count=3, clock=clock),
        )

    def test_stats_before_any_traffic(self, service):
        status, body = service.dispatch("stats", None)
        assert status == 200
        entry = body["models"]["groupA"]
        assert entry["reference"]["available"]
        assert entry["reference"]["grid"] == [10, 10]
        assert entry["current"]["points"] == 0
        assert entry["current"]["drift_psi"] is None
        assert entry["current"]["coverage_fraction"] is None
        json.dumps(body)  # must be JSON-serialisable

    def test_stats_reports_drift_coverage_and_out_of_range(
            self, service, referenced_model_dir):
        # Half in-segment traffic, half far outside every rule and
        # beyond the trained age range (age 200 > edge 100).
        service.predict_batch({
            "model": "groupA",
            "x": [25.0, 25.0, 65.0, 200.0],
            "y": [60_000.0, 99_000.0, 50_000.0, 5_000.0],
        })
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        current = entry["current"]
        assert current["points"] == 4
        assert current["coverage_fraction"] == pytest.approx(0.75)
        assert current["out_of_range"]["age"] == pytest.approx(0.25)
        assert current["out_of_range"]["salary"] == 0.0
        for family in ("drift_psi", "drift_js"):
            for attribute in ("age", "salary", "joint"):
                value = current[family][attribute]
                assert np.isfinite(value) and value >= 0.0
        # JS is bounded to [0, 1] bits.
        assert all(value <= 1.0 for value in current["drift_js"].values())

    def test_drift_is_bit_identical_to_scalar_oracle(
            self, service, referenced_model_dir):
        rng = np.random.default_rng(29)
        service.predict_batch({
            "model": "groupA",
            "x": rng.uniform(0.0, 100.0, 300).tolist(),
            "y": rng.uniform(0.0, 160_000.0, 300).tolist(),
        })
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        recent = entry["recent"]
        reference = segmentation_reference(
            referenced_model_dir / "groupA.json"
        )
        assert recent["drift_psi"]["age"] == psi_scalar(
            reference.x_counts, recent["x_counts"]
        )
        assert recent["drift_psi"]["salary"] == psi_scalar(
            reference.y_counts, recent["y_counts"]
        )
        assert recent["drift_psi"]["joint"] == psi_scalar(
            reference.totals, recent["totals"]
        )
        assert recent["drift_js"]["age"] == js_divergence_scalar(
            reference.x_counts, recent["x_counts"]
        )
        assert recent["drift_js"]["joint"] == js_divergence_scalar(
            reference.totals, recent["totals"]
        )

    def test_windows_tumble_and_recent_aggregates(self, service, clock):
        predict = {"model": "groupA", "x": 25.0, "y": 60_000.0}
        service.predict(predict)
        clock.advance(31.0)  # expire the first window
        service.predict(predict)
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        assert entry["windows_retained"] == 1
        assert entry["current"]["points"] == 1
        assert entry["recent"]["points"] == 2
        # The ring is bounded: many rotations keep only window_count.
        for _ in range(5):
            clock.advance(31.0)
            service.predict(predict)
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        assert entry["windows_retained"] == 3
        assert entry["recent"]["points"] == 4  # 3 closed + current

    def test_monitor_without_reference_still_tracks_coverage(
            self, model_dir):
        service = PredictionService(
            ModelRegistry(model_dir, refresh_interval=0).load()
        )
        service.predict_batch({
            "model": "groupA", "x": [25.0, 5.0],
            "y": [60_000.0, 5_000.0],
        })
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        assert entry["reference"] == {"available": False}
        assert entry["current"]["coverage_fraction"] == pytest.approx(0.5)
        assert entry["current"]["drift_psi"] is None
        assert entry["current"]["out_of_range"] is None

    def test_predict_and_explain_feed_the_monitor(self, service):
        service.predict({"model": "groupA", "x": 25.0, "y": 60_000.0})
        service.explain({"model": "groupA", "x": 5.0, "y": 5_000.0})
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        assert entry["current"]["requests"] == 2
        assert entry["current"]["points"] == 2
        assert entry["current"]["rule_hits"] == [1, 0, 0]
        assert entry["current"]["fallback_points"] == 1

    def test_hot_reload_starts_a_fresh_monitor(
            self, service, referenced_model_dir, segmentation):
        service.predict({"model": "groupA", "x": 25.0, "y": 60_000.0})
        old_id = service.dispatch(
            "stats", None)[1]["models"]["groupA"]["id"]
        replacement = Segmentation.from_rules([make_rule(0, 10, 0, 10)])
        save_segmentation(replacement,
                          referenced_model_dir / "groupA.json",
                          bin_array=training_bin_array())
        service.registry.refresh()
        entry = service.dispatch("stats", None)[1]["models"]["groupA"]
        assert entry["id"] != old_id
        assert entry["current"]["points"] == 0  # fresh monitor
        assert len(service.monitors) == 1  # the old one was pruned

    def test_drift_gauges_flow_to_prometheus(self, service):
        from repro.obs import metrics as metrics_mod
        from repro.obs.prometheus import parse_prometheus
        from repro.serve.service import TextResponse
        metrics_mod.enable(metrics_mod.MetricsRegistry())
        try:
            service.predict_batch({
                "model": "groupA",
                "x": [25.0] * 10, "y": [60_000.0] * 10,
            })
            service.dispatch("stats", None)
            status, body = service.dispatch(
                "metrics", {"format": "prometheus"}
            )
        finally:
            metrics_mod.disable()
        assert status == 200 and isinstance(body, TextResponse)
        families = parse_prometheus(body.text)
        for family in ("arcs_serve_drift_psi", "arcs_serve_drift_js",
                       "arcs_serve_coverage_fraction",
                       "arcs_serve_out_of_range"):
            assert families[family]["kind"] == "gauge"
        psi_samples = {
            labels["attr"]: value
            for _, labels, value
            in families["arcs_serve_drift_psi"]["samples"]
            if labels["model"] == "groupA"
        }
        assert set(psi_samples) == {"age", "salary", "joint"}

    def test_drift_threshold_crossing_emits_event(
            self, service, tmp_path):
        from repro.obs import events
        log = tmp_path / "events.jsonl"
        events.enable_events(log)
        try:
            # All traffic into one far corner: PSI far above 0.2.
            service.predict_batch({
                "model": "groupA",
                "x": [99.0] * 50, "y": [159_000.0] * 50,
            })
            service.dispatch("stats", None)
        finally:
            events.disable_events()
        alerts = [
            json.loads(line) for line in log.read_text().splitlines()
            if json.loads(line)["type"] == "drift_alert"
        ]
        assert alerts, "expected a drift_alert event"
        assert alerts[0]["state"] == "alert"
        assert alerts[0]["model"] == "groupA"
        assert alerts[0]["psi"] > 0.2
        # A second stats read without a state change stays quiet.
        events.enable_events(tmp_path / "events2.jsonl")
        try:
            service.dispatch("stats", None)
        finally:
            events.disable_events()
        second = (tmp_path / "events2.jsonl")
        assert (not second.exists()
                or "drift_alert" not in second.read_text())

    def test_recording_failure_never_breaks_prediction(
            self, service, monkeypatch, caplog):
        def explode(*args, **kwargs):
            raise RuntimeError("monitor down")

        monkeypatch.setattr(
            type(service.monitors), "for_model", explode
        )
        with caplog.at_level("ERROR", logger="repro.serve.service"):
            body = service.predict(
                {"model": "groupA", "x": 25.0, "y": 60_000.0}
            )
        assert body["in_segment"]
        assert "traffic monitor recording failed" in caplog.text


class TestStatsOverHTTP:
    @pytest.fixture()
    def referenced_server(self, referenced_model_dir):
        server = create_server(referenced_model_dir, port=0,
                               refresh_interval=0)
        server.serve_in_background()
        yield server
        server.shutdown()
        server.server_close()

    def test_stats_endpoint_over_http(self, referenced_server):
        _post(referenced_server, "/predict_batch", {
            "model": "groupA",
            "x": [25.0, 25.0, 5.0], "y": [60_000.0, 99_000.0, 5_000.0],
        })
        status, body = _get(referenced_server, "/stats")
        assert status == 200
        entry = body["models"]["groupA"]
        assert entry["reference"]["available"]
        assert entry["current"]["points"] == 3
        assert np.isfinite(entry["current"]["drift_psi"]["joint"])

    def test_stats_while_hammering_predict(self, referenced_server):
        """Readers of /stats race writers of /predict without errors or
        torn snapshots."""
        errors = []
        stats_bodies = []
        rng = np.random.default_rng(41)
        points = rng.uniform(0.0, 100.0, (6, 40))

        def predictor(row):
            for x in points[row]:
                status, _ = _post(referenced_server, "/predict", {
                    "model": "groupA", "x": float(x), "y": 60_000.0,
                })
                if status != 200:
                    errors.append(("predict", status))

        def reader():
            for _ in range(20):
                status, body = _get(referenced_server, "/stats")
                if status != 200:
                    errors.append(("stats", status))
                else:
                    stats_bodies.append(body)

        threads = [
            threading.Thread(target=predictor, args=(row,))
            for row in range(6)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = _get(referenced_server, "/stats")[1]
        assert final["models"]["groupA"]["recent"]["points"] == 240
        # Every intermediate snapshot is internally consistent.
        for body in stats_bodies:
            recent = body["models"]["groupA"]["recent"]
            assert recent["points"] == sum(recent["x_counts"])
            assert recent["points"] >= recent["fallback_points"]


# ----------------------------------------------------------------------
# Graceful drain (threaded path)
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_begin_drain_rejects_scoring_with_503(self, model_dir):
        service = PredictionService(
            ModelRegistry(model_dir, refresh_interval=0).load()
        )
        assert not service.draining
        service.begin_drain()
        assert service.draining
        service.begin_drain()  # idempotent
        for endpoint in ("predict", "predict_batch", "explain"):
            status, body = service.dispatch(
                endpoint, {"model": "groupA", "x": 25, "y": 60_000}
            )
            assert status == 503
            assert "draining" in body["error"]
        # Read-only endpoints keep answering so orchestration can
        # watch the drain finish.
        assert service.healthz()["status"] == "draining"
        assert service.dispatch("models", {})[0] == 200

    def test_inflight_request_completes_during_drain(self, server):
        import time as time_module

        service = server.service
        entered = threading.Event()
        release = threading.Event()
        direct = service.scorer_for

        class SlowScorer:
            def __init__(self, scorer):
                self.scorer = scorer
                self.segmentation = scorer.segmentation

            def score_batch(self, x_values, y_values):
                entered.set()
                assert release.wait(30.0), "drain test never released"
                return self.scorer.score_batch(x_values, y_values)

        service.scorer_for = lambda model: SlowScorer(direct(model))
        results = []
        inflight = threading.Thread(target=lambda: results.append(
            _post(server, "/predict",
                  {"model": "groupA", "x": 25, "y": 60_000})
        ))
        inflight.start()
        assert entered.wait(10.0)
        # Drain mid-flight: the slow request must complete, new
        # scoring work must bounce with 503.
        service.begin_drain()
        status, body = _post(server, "/predict",
                             {"model": "groupA", "x": 25, "y": 60_000})
        assert status == 503 and "draining" in body["error"]
        release.set()
        inflight.join(10.0)
        assert not inflight.is_alive()
        assert results and results[0][0] == 200
        assert results[0][1]["in_segment"]

    def test_drain_server_helper_stops_the_loop(self, model_dir):
        from repro.serve import drain_server

        server = create_server(model_dir, port=0, refresh_interval=0,
                               batch_window_seconds=0.001)
        thread = server.serve_in_background()
        assert _post(server, "/predict",
                     {"model": "groupA", "x": 25, "y": 60_000})[0] == 200
        drain_server(server, timeout=10.0)
        thread.join(10.0)
        assert not thread.is_alive()
        assert server.service.draining
        assert server.service.batcher.closed
        server.server_close()

    def test_sigterm_drains_run_server_promptly(self, model_dir):
        # Regression: the SIGTERM handler used to run drain_server on
        # the main thread — the one inside serve_forever — so the
        # blocking join stalled shutdown for the full drain timeout.
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve",
             str(model_dir), "--port", "0", "--batch-window", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            url = None
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    pytest.fail("server exited early:\n"
                                + proc.stdout.read().decode())
                line = proc.stdout.readline().decode()
                if "http://" in line:
                    url = "http://" + line.split("http://", 1)[1].strip()
                    break
            assert url is not None, "server never printed its URL"
            # Answering a request proves serve_forever is running — and
            # with it, that the SIGTERM handler is installed.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(url + "/healthz",
                                                timeout=2.0):
                        break
                except (urllib.error.URLError, OSError):
                    time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)
            # Well under the 30s drain timeout the old handler burned.
            assert proc.wait(timeout=10.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
            proc.stdout.close()

    def test_batched_server_end_to_end(self, model_dir):
        from repro.obs import metrics as metrics_module

        metrics_module.enable(metrics_module.MetricsRegistry())
        server = create_server(model_dir, port=0, refresh_interval=0,
                               batch_window_seconds=0.002)
        server.serve_in_background()
        try:
            statuses = []
            lock = threading.Lock()

            def call(row):
                status, body = _post(
                    server, "/predict",
                    {"model": "groupA", "x": 25 + row, "y": 60_000},
                )
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=call, args=(row,))
                       for row in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses == [200] * 12
            # The batching gauge is live on the JSON exposition.
            body = _get(server, "/metrics")[1]
            assert "serve.queue_depth" in body["metrics"]["gauges"]
        finally:
            server.service.batcher.close()
            server.shutdown()
            server.server_close()
            metrics_module.disable()
