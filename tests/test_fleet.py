"""Tests for fleet telemetry (repro.obs.fleet).

Covers the kind-aware merge policy the aggregator relies on (counters
and histogram buckets sum; gauges are re-labeled per source, never
summed; a restarted worker's fresh registry still accumulates
monotonically), the :class:`FleetAggregator` lifecycle surface, and the
atomically published document a :class:`FleetView` reads back.
"""

import json

import pytest

from repro.obs.fleet import FLEET_FORMAT, FleetAggregator, FleetView
from repro.obs.metrics import MetricsRegistry


def payload(pid, incarnation, registry, *, uptime=1.5, draining=False,
            events=None):
    """One worker telemetry message, as ``_worker_main`` ships it."""
    return {
        "pid": pid,
        "incarnation": incarnation,
        "uptime_seconds": uptime,
        "draining": draining,
        "snapshot": registry.snapshot(),
        "events": events,
    }


# ----------------------------------------------------------------------
# merge_snapshot under the gauge policy
# ----------------------------------------------------------------------
class TestMergeSnapshotGaugePolicy:
    def test_gauges_never_sum(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3.0)
        registry.merge_snapshot({"gauges": {"depth": 5.0}})
        # Last wins — a merged gauge overwrites; 8.0 would mean a sum.
        assert registry.gauge("depth").value == 5.0

    def test_relabel_lands_each_source_on_its_own_series(self):
        parent = MetricsRegistry()
        for worker, depth in (("0", 3.0), ("1", 7.0)):
            parent.merge_snapshot(
                {"gauges": {"depth": depth}},
                relabel_gauges={"worker": worker},
            )
        assert parent.snapshot()["gauges"] == {
            'depth{worker="0"}': 3.0,
            'depth{worker="1"}': 7.0,
        }

    def test_relabel_composes_with_existing_labels(self):
        worker = MetricsRegistry()
        worker.set_gauge("drift", 0.5, labels={"model": "m"})
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot(),
                              relabel_gauges={"worker": "0"})
        assert parent.snapshot()["gauges"] == {
            'drift{model="m",worker="0"}': 0.5,
        }

    def test_relabel_does_not_touch_counters_or_histograms(self):
        parent = MetricsRegistry()
        for worker in ("0", "1"):
            source = MetricsRegistry()
            source.inc("requests", 2)
            source.observe("seconds", 0.1)
            parent.merge_snapshot(source.snapshot(),
                                  relabel_gauges={"worker": worker})
        assert parent.counter("requests").value == 4
        assert parent.histogram("seconds").count == 2
        assert 'requests{worker="0"}' not in parent.snapshot()["counters"]

    def test_mismatched_histogram_bucket_bounds_raise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("seconds", buckets=(0.1, 1.0)).observe(0.05)
        b.histogram("seconds", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError, match="bucket"):
            a.merge_snapshot(b.snapshot())

    def test_restarted_worker_counters_accumulate_monotonically(self):
        # A respawned worker ships a *fresh* registry starting at zero;
        # merging it into running totals must only ever add.
        parent = MetricsRegistry()
        first = MetricsRegistry()
        first.inc("requests", 5)
        parent.merge_snapshot(first.snapshot())
        restarted = MetricsRegistry()  # fresh after the watchdog respawn
        restarted.inc("requests", 2)
        parent.merge_snapshot(restarted.snapshot())
        assert parent.counter("requests").value == 7


# ----------------------------------------------------------------------
# FleetAggregator
# ----------------------------------------------------------------------
class TestFleetAggregator:
    def two_worker_aggregator(self):
        aggregator = FleetAggregator()
        aggregator.register_worker(0, 100, 1)
        aggregator.register_worker(1, 101, 1)
        w0, w1 = MetricsRegistry(), MetricsRegistry()
        w0.inc("serve.requests", 4)
        w0.set_gauge("serve.queue_depth", 2.0)
        w0.observe("serve.batch_size", 8.0)
        w1.inc("serve.requests", 6)
        w1.set_gauge("serve.queue_depth", 5.0)
        w1.observe("serve.batch_size", 16.0)
        aggregator.absorb(0, payload(100, 1, w0))
        aggregator.absorb(1, payload(101, 1, w1))
        return aggregator

    def test_counters_sum_gauges_relabel_histograms_merge(self):
        aggregate = self.two_worker_aggregator().aggregate()
        assert aggregate["counters"]["serve.requests"] == 10
        assert aggregate["gauges"] == {
            'serve.queue_depth{worker="0"}': 2.0,
            'serve.queue_depth{worker="1"}': 5.0,
        }
        assert aggregate["histograms"]["serve.batch_size"]["count"] == 2

    def test_parent_snapshot_rides_along_under_its_own_label(self):
        aggregator = self.two_worker_aggregator()
        parent = MetricsRegistry()
        parent.inc("fleet.snapshots_absorbed", 2)
        parent.set_gauge("serve.workers", 2.0)
        aggregate = aggregator.aggregate(parent.snapshot())
        assert aggregate["counters"]["fleet.snapshots_absorbed"] == 2
        assert aggregate["gauges"]['serve.workers{worker="parent"}'] == 2.0
        assert "serve.workers" not in aggregate["gauges"]

    def test_restart_folds_counters_and_drops_gauges(self):
        aggregator = FleetAggregator()
        aggregator.register_worker(0, 100, 1)
        first = MetricsRegistry()
        first.inc("serve.requests", 5)
        first.set_gauge("serve.queue_depth", 9.0)
        aggregator.absorb(0, payload(100, 1, first))
        # Watchdog replaces the crashed worker: new pid, incarnation 2.
        aggregator.note_restart(0)
        aggregator.register_worker(0, 200, 2)
        between = aggregator.aggregate()
        # The dead incarnation's counters survive; its gauge does not —
        # a dead process has no current queue depth.
        assert between["counters"]["serve.requests"] == 5
        assert between["gauges"] == {}
        restarted = MetricsRegistry()  # fresh registry, counts from 0
        restarted.inc("serve.requests", 2)
        aggregator.absorb(0, payload(200, 2, restarted))
        aggregate = aggregator.aggregate()
        assert aggregate["counters"]["serve.requests"] == 7
        entry = aggregator.build_document()["workers"]["0"]
        assert entry["pid"] == 200
        assert entry["spawn_generation"] == 2
        assert entry["restarts"] == 1
        assert entry["counters"]["serve.requests"] == 7

    def test_absorb_with_newer_incarnation_folds_without_register(self):
        # Telemetry can outrun the watchdog's register call; the payload
        # itself carries the incarnation and must fold just the same.
        aggregator = FleetAggregator()
        aggregator.register_worker(0, 100, 1)
        first = MetricsRegistry()
        first.inc("serve.requests", 3)
        aggregator.absorb(0, payload(100, 1, first))
        second = MetricsRegistry()
        second.inc("serve.requests", 1)
        aggregator.absorb(0, payload(200, 2, second))
        assert aggregator.aggregate()["counters"]["serve.requests"] == 4

    def test_ack_latency_bookkeeping(self):
        aggregator = FleetAggregator()
        aggregator.register_worker(0, 100, 1)
        aggregator.note_sync_sent(3)
        aggregator.note_sync_ack(0, 3)
        entry = aggregator.build_document()["workers"]["0"]
        assert entry["ack_generation"] == 3
        assert entry["ack_latency_seconds"] >= 0.0
        # An ack for a generation never stamped reports no latency but
        # still advances the high-water mark.
        aggregator.note_sync_ack(0, 7)
        entry = aggregator.build_document()["workers"]["0"]
        assert entry["ack_generation"] == 7

    def test_document_shape_and_generation(self):
        aggregator = self.two_worker_aggregator()
        document = aggregator.build_document()
        assert document["format"] == FLEET_FORMAT
        assert document["generation"] == 1
        assert document["snapshots_absorbed"] == 2
        assert set(document["workers"]) == {"0", "1"}
        for entry in document["workers"].values():
            for field in ("pid", "spawn_generation", "restarts",
                          "uptime_seconds", "draining", "spawned_unix",
                          "last_snapshot_unix", "ack_generation",
                          "ack_latency_seconds", "events", "counters"):
                assert field in entry
        assert aggregator.build_document()["generation"] == 2
        json.dumps(document)  # stays JSON-ready


# ----------------------------------------------------------------------
# Publish + FleetView
# ----------------------------------------------------------------------
class TestFleetPublishAndView:
    def aggregator(self):
        aggregator = FleetAggregator()
        aggregator.register_worker(0, 100, 1)
        registry = MetricsRegistry()
        registry.inc("serve.requests", 4)
        aggregator.absorb(0, payload(100, 1, registry))
        return aggregator

    def test_view_returns_none_before_first_publish(self, tmp_path):
        assert FleetView(tmp_path / "fleet.json").read() is None

    def test_publish_then_read_round_trips(self, tmp_path):
        path = tmp_path / "fleet.json"
        aggregator = self.aggregator()
        aggregator.publish(path)
        view = FleetView(path)
        document = view.read()
        assert document["format"] == FLEET_FORMAT
        assert document["generation"] == 1
        assert document["aggregate"]["counters"]["serve.requests"] == 4
        # No temp file left behind by the write-then-replace.
        assert list(tmp_path.iterdir()) == [path]
        aggregator.publish(path)
        assert view.read()["generation"] == 2

    def test_read_is_cached_until_the_file_changes(self, tmp_path):
        path = tmp_path / "fleet.json"
        self.aggregator().publish(path)
        view = FleetView(path)
        assert view.read() is view.read()

    def test_garbage_keeps_the_last_complete_document(self, tmp_path):
        path = tmp_path / "fleet.json"
        self.aggregator().publish(path)
        view = FleetView(path)
        good = view.read()
        path.write_text("{torn", encoding="utf-8")
        assert view.read() == good
        path.write_text(json.dumps({"format": "something-else"}),
                        encoding="utf-8")
        assert view.read() == good

    def test_second_publish_reports_the_previous_wall_time(self, tmp_path):
        path = tmp_path / "fleet.json"
        aggregator = self.aggregator()
        first = aggregator.publish(path)
        assert first["last_publish_seconds"] is None
        second = aggregator.publish(path)
        assert second["last_publish_seconds"] > 0.0
