"""Unit tests for the perturbation and outlier models."""

import numpy as np
import pytest

from repro.data.perturbation import inject_outliers, perturb_quantitative
from repro.data.schema import Table, quantitative


@pytest.fixture()
def simple_table():
    return Table.from_columns(
        [quantitative("x", 0, 100), quantitative("y", 0, 10)],
        {"x": [10.0, 50.0, 90.0], "y": [1.0, 5.0, 9.0]},
    )


class TestPerturbQuantitative:
    def test_zero_factor_is_identity_shape(self, simple_table, fresh_rng):
        out = perturb_quantitative(simple_table, ["x"], 0.0, fresh_rng)
        assert np.allclose(out.column("x"), simple_table.column("x"))

    def test_bounded_by_factor_times_width(self, simple_table, fresh_rng):
        out = perturb_quantitative(simple_table, ["x"], 0.05, fresh_rng)
        deltas = np.abs(out.column("x") - simple_table.column("x"))
        assert (deltas <= 0.05 * 100 + 1e-9).all()

    def test_values_clipped_to_domain(self, fresh_rng):
        table = Table.from_columns(
            [quantitative("x", 0, 100)], {"x": [0.0, 100.0] * 50}
        )
        out = perturb_quantitative(table, ["x"], 0.3, fresh_rng)
        assert out.column("x").min() >= 0.0
        assert out.column("x").max() <= 100.0

    def test_untouched_columns_preserved(self, simple_table, fresh_rng):
        out = perturb_quantitative(simple_table, ["x"], 0.1, fresh_rng)
        assert np.array_equal(out.column("y"), simple_table.column("y"))

    def test_original_table_unmodified(self, simple_table, fresh_rng):
        before = simple_table.column("x").copy()
        perturb_quantitative(simple_table, ["x"], 0.2, fresh_rng)
        assert np.array_equal(simple_table.column("x"), before)

    def test_rejects_categorical(self, fresh_rng):
        from repro.data.schema import categorical
        table = Table.from_columns(
            [categorical("c")], {"c": ["a", "b"]}
        )
        with pytest.raises(ValueError):
            perturb_quantitative(table, ["c"], 0.1, fresh_rng)

    def test_rejects_bad_factor(self, simple_table, fresh_rng):
        with pytest.raises(ValueError):
            perturb_quantitative(simple_table, ["x"], 1.5, fresh_rng)


class TestInjectOutliers:
    def test_exact_fraction(self, fresh_rng):
        labels = np.array(["A"] * 600 + ["other"] * 400, dtype=object)
        flipped = inject_outliers(labels, 0.10, fresh_rng)
        assert int(np.sum(labels != flipped)) == 100

    def test_zero_fraction_is_identity(self, fresh_rng):
        labels = np.array(["A", "other"], dtype=object)
        flipped = inject_outliers(labels, 0.0, fresh_rng)
        assert (labels == flipped).all()

    def test_flipped_labels_are_valid_groups(self, fresh_rng):
        labels = np.array(["A"] * 100, dtype=object)
        flipped = inject_outliers(labels, 0.5, fresh_rng)
        assert set(flipped) <= {"A", "other"}
        assert int(np.sum(flipped == "other")) == 50

    def test_multi_group_flips_to_different_group(self, fresh_rng):
        labels = np.array(["a"] * 200, dtype=object)
        flipped = inject_outliers(
            labels, 0.3, fresh_rng, groups=("a", "b", "c")
        )
        changed = flipped[labels != flipped]
        assert len(changed) == 60
        assert set(changed) <= {"b", "c"}

    def test_input_not_mutated(self, fresh_rng):
        labels = np.array(["A"] * 50, dtype=object)
        inject_outliers(labels, 0.2, fresh_rng)
        assert (labels == "A").all()

    def test_rejects_single_group(self, fresh_rng):
        with pytest.raises(ValueError):
            inject_outliers(
                np.array(["A"], dtype=object), 0.1, fresh_rng,
                groups=("A",),
            )

    def test_rejects_bad_fraction(self, fresh_rng):
        with pytest.raises(ValueError):
            inject_outliers(
                np.array(["A", "B"], dtype=object), 1.0, fresh_rng
            )
