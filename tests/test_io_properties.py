"""Property-based round-trip tests for CSV I/O and persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.io import read_csv, stream_csv, write_csv
from repro.data.schema import Table, categorical, quantitative

# Categorical values that survive CSV round trips (csv handles quoting,
# but values come back as strings, so generate strings; commas and
# quotes are fair game).
category_values = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters=" ,_-'\"",
    ),
    min_size=1, max_size=12,
).map(str.strip).filter(bool)

SPECS = [
    quantitative("x"),
    quantitative("y"),
    categorical("label"),
]


@st.composite
def tables(draw, max_rows=30):
    n = draw(st.integers(1, max_rows))
    xs = draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=n, max_size=n
    ))
    ys = draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=n, max_size=n
    ))
    labels = draw(st.lists(category_values, min_size=n, max_size=n))
    return Table.from_columns(
        SPECS, {"x": xs, "y": ys, "label": labels}
    )


@settings(max_examples=40, deadline=None)
@given(tables())
def test_csv_round_trip_preserves_rows(tmp_path_factory, table):
    path = tmp_path_factory.mktemp("io") / "t.csv"
    write_csv(table, path)
    loaded = read_csv(path, SPECS)
    assert len(loaded) == len(table)
    assert np.allclose(loaded.column("x"), table.column("x"),
                       rtol=1e-12, atol=0)
    assert list(loaded.column("label")) == [
        str(value) for value in table.column("label")
    ]


@settings(max_examples=30, deadline=None)
@given(tables(), st.integers(1, 7))
def test_streamed_chunks_concat_to_whole_file(tmp_path_factory, table,
                                              chunk_rows):
    path = tmp_path_factory.mktemp("io") / "t.csv"
    write_csv(table, path)
    chunks = list(stream_csv(path, SPECS, chunk_rows=chunk_rows))
    assert sum(len(chunk) for chunk in chunks) == len(table)
    assert all(len(chunk) <= chunk_rows for chunk in chunks)
    combined = chunks[0]
    for chunk in chunks[1:]:
        combined = combined.concat(chunk)
    whole = read_csv(path, SPECS)
    assert np.allclose(combined.column("y"), whole.column("y"),
                       rtol=1e-12, atol=0)


@settings(max_examples=30, deadline=None)
@given(tables())
def test_segmentation_membership_survives_json(tmp_path_factory, table):
    """Persisted segmentations classify points identically."""
    from repro.core.rules import ClusteredRule, Interval
    from repro.core.segmentation import Segmentation
    from repro.persistence import load_segmentation, save_segmentation

    xs = table.column("x")
    ys = table.column("y")
    x_lo, x_hi = float(xs.min()), float(xs.max()) + 1.0
    y_lo, y_hi = float(ys.min()), float(ys.max()) + 1.0
    segmentation = Segmentation.from_rules([
        ClusteredRule(
            "x", "y",
            Interval(x_lo, (x_lo + x_hi) / 2 + 1e-9),
            Interval(y_lo, y_hi),
            "label", "A", support=0.5, confidence=0.9,
        )
    ])
    path = tmp_path_factory.mktemp("io") / "seg.json"
    save_segmentation(segmentation, path)
    loaded = load_segmentation(path)
    assert np.array_equal(
        segmentation.covers(xs, ys), loaded.covers(xs, ys)
    )
