"""Unit tests for the majority-class baseline."""

import numpy as np
import pytest

from repro.baselines.majority import (
    MajorityClassifier,
    majority_error_floor,
)
from repro.baselines.metrics import classification_error
from repro.data.schema import Table, categorical, quantitative


def make_table(labels):
    return Table.from_columns(
        [quantitative("x"), categorical("g")],
        {"x": list(range(len(labels))), "g": labels},
    )


class TestMajorityClassifier:
    def test_picks_majority(self):
        table = make_table(["a", "a", "b"])
        clf = MajorityClassifier().fit(table, "g")
        assert clf.label == "a"
        assert (clf.predict(table) == "a").all()

    def test_unfitted_raises(self):
        with pytest.raises(ValueError):
            MajorityClassifier().predict(make_table(["a"]))

    def test_preserves_label_object_type(self):
        table = make_table([1, 1, 2])
        clf = MajorityClassifier().fit(table, "g")
        assert clf.label == 1


class TestErrorFloor:
    def test_floor_value(self):
        table = make_table(["a"] * 3 + ["b"] * 7)
        assert majority_error_floor(table, "g", "a") == pytest.approx(0.3)
        assert majority_error_floor(table, "g", "b") == pytest.approx(0.3)

    def test_floor_matches_classifier_error(self, f2_table):
        clf = MajorityClassifier().fit(f2_table, "group")
        measured = classification_error(
            clf.predict(f2_table), f2_table, "group", "A"
        )
        floor = majority_error_floor(f2_table, "group", "A")
        assert measured == pytest.approx(floor)

    def test_arcs_beats_the_floor(self, f2_table):
        """Sanity: the reproduced segmentation is genuinely informative."""
        import repro
        from repro.core.optimizer import OptimizerConfig
        result = repro.ARCS(repro.ARCSConfig(
            optimizer=OptimizerConfig(max_support_levels=5,
                                      max_confidence_levels=5),
        )).fit(f2_table, "age", "salary", "group", "A")
        floor = majority_error_floor(f2_table, "group", "A")
        assert result.best_trial.report.error_rate < floor / 2