"""Unit tests for the single-pass 2-D rule engine (paper Figure 3)."""

import pytest

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import equi_width_layout
from repro.mining.engine import mine_binned_rules, rule_pairs


def make_array():
    array = BinArray(
        x_layout=equi_width_layout("x", 0, 4, 4),
        y_layout=equi_width_layout("y", 0, 4, 4),
        rhs_encoding=CategoricalEncoding("g", ("A", "other")),
    )
    # Cell (0,0): 4 A of 5.  Cell (1,1): 1 A of 4.  Cell (2,2): 2 other.
    array.add_chunk(
        [0] * 5 + [1] * 4 + [2] * 2,
        [0] * 5 + [1] * 4 + [2] * 2,
        [0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 1],
    )
    return array  # N = 11


class TestRulePairs:
    def test_support_and_confidence_thresholds(self):
        array = make_array()
        # support >= 2/11 keeps (0,0) only among A-cells; conf 0.5 passes.
        got = rule_pairs(array, 0, min_support=2 / 11, min_confidence=0.5)
        assert got == [(0, 0)]

    def test_low_thresholds_keep_all_occupied_target_cells(self):
        array = make_array()
        got = rule_pairs(array, 0, min_support=0.0, min_confidence=0.0)
        assert got == [(0, 0), (1, 1)]

    def test_confidence_filters_weak_cells(self):
        array = make_array()
        got = rule_pairs(array, 0, min_support=0.0, min_confidence=0.5)
        assert got == [(0, 0)]  # (1,1) has confidence 0.25

    def test_empty_cells_never_qualify(self):
        array = make_array()
        got = rule_pairs(array, 0, 0.0, 0.0)
        assert (3, 3) not in got

    def test_other_group_cells(self):
        array = make_array()
        got = rule_pairs(array, 1, min_support=0.0, min_confidence=0.9)
        assert (2, 2) in got
        assert (0, 0) not in got

    def test_support_tie_is_inclusive(self):
        """The paper's >= min_support_count comparison."""
        array = make_array()
        got = rule_pairs(array, 0, min_support=4 / 11, min_confidence=0.0)
        assert got == [(0, 0)]

    @pytest.mark.parametrize("support,confidence",
                             [(-0.1, 0.5), (0.5, 1.5)])
    def test_rejects_bad_thresholds(self, support, confidence):
        with pytest.raises(ValueError):
            rule_pairs(make_array(), 0, support, confidence)


class TestMineBinnedRules:
    def test_rules_carry_measures(self):
        array = make_array()
        rules = mine_binned_rules(array, 0, 0.0, 0.5)
        assert len(rules) == 1
        rule = rules[0]
        assert (rule.x_bin, rule.y_bin) == (0, 0)
        assert rule.support == pytest.approx(4 / 11)
        assert rule.confidence == pytest.approx(4 / 5)
        assert rule.rhs_value == "A"

    def test_remining_with_new_thresholds_needs_no_data(self):
        """The BinArray is the only input — re-mining is a pure re-scan."""
        array = make_array()
        loose = mine_binned_rules(array, 0, 0.0, 0.0)
        tight = mine_binned_rules(array, 0, 0.3, 0.5)
        assert len(loose) > len(tight)
        assert array.n_total == 11  # untouched
