"""Unit tests for the BinArray count cube."""

import numpy as np
import pytest

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import equi_width_layout


def make_bin_array(n_x=4, n_y=3, target=None):
    return BinArray(
        x_layout=equi_width_layout("x", 0, 4, n_x),
        y_layout=equi_width_layout("y", 0, 3, n_y),
        rhs_encoding=CategoricalEncoding("g", ("A", "other")),
        target_code=target,
    )


class TestShapeAndModes:
    def test_full_mode_shape(self):
        array = make_bin_array()
        assert array.counts.shape == (4, 3, 2)
        assert array.totals.shape == (4, 3)
        assert not array.single_target

    def test_single_target_mode_shape(self):
        array = make_bin_array(target=0)
        assert array.counts.shape == (4, 3, 1)
        assert array.single_target

    def test_memory_cells_smaller_in_single_target_mode(self):
        full = make_bin_array()
        single = make_bin_array(target=0)
        assert single.memory_cells() < full.memory_cells()


class TestAccumulation:
    def test_add_chunk_counts(self):
        array = make_bin_array()
        array.add_chunk([0, 0, 1], [0, 0, 2], [0, 1, 0])
        assert array.n_total == 3
        assert array.totals[0, 0] == 2
        assert array.count_grid(0)[0, 0] == 1
        assert array.count_grid(1)[0, 0] == 1
        assert array.count_grid(0)[1, 2] == 1

    def test_multiple_chunks_accumulate(self):
        array = make_bin_array()
        array.add_chunk([0], [0], [0])
        array.add_chunk([0], [0], [0])
        assert array.count_grid(0)[0, 0] == 2
        assert array.n_total == 2

    def test_repeated_cells_in_one_chunk(self):
        """np.add.at semantics: duplicates within a chunk all count."""
        array = make_bin_array()
        array.add_chunk([2, 2, 2], [1, 1, 1], [0, 0, 1])
        assert array.totals[2, 1] == 3
        assert array.count_grid(0)[2, 1] == 2

    def test_length_mismatch_rejected(self):
        array = make_bin_array()
        with pytest.raises(ValueError):
            array.add_chunk([0, 1], [0], [0])

    def test_single_target_mode_counts_only_target(self):
        array = make_bin_array(target=0)
        array.add_chunk([0, 0], [0, 0], [0, 1])
        assert array.totals[0, 0] == 2
        assert array.count_grid(0)[0, 0] == 1

    def test_single_target_mode_rejects_other_code(self):
        array = make_bin_array(target=0)
        array.add_chunk([0], [0], [0])
        with pytest.raises(ValueError):
            array.count_grid(1)


class TestChunkValidation:
    """Out-of-range indices would alias into neighbouring cells through
    the flattened bincount arithmetic; both scatter paths reject them."""

    @pytest.mark.parametrize("x, y, code, label", [
        ([4], [0], [0], "x_bins"),     # n_x == 4
        ([-1], [0], [0], "x_bins"),
        ([0], [3], [0], "y_bins"),     # n_y == 3
        ([0], [-2], [0], "y_bins"),
        ([0], [0], [2], "rhs_codes"),  # cardinality == 2
        ([0], [0], [-1], "rhs_codes"),
    ])
    def test_add_chunk_rejects_out_of_range(self, x, y, code, label):
        array = make_bin_array()
        with pytest.raises(ValueError, match=label):
            array.add_chunk(x, y, code)
        # Validation happened before any counter was touched.
        assert array.n_total == 0
        assert not array.totals.any()

    def test_remove_chunk_shares_the_validation(self):
        array = make_bin_array()
        array.add_chunk([0], [0], [0])
        with pytest.raises(ValueError, match="x_bins"):
            array.remove_chunk([4], [0], [0])
        assert array.n_total == 1

    def test_empty_chunks_are_fine(self):
        array = make_bin_array()
        array.add_chunk([], [], [])
        array.remove_chunk([], [], [])
        assert array.n_total == 0


class TestRemoveChunk:
    def test_remove_inverts_add(self):
        array = make_bin_array()
        array.add_chunk([0, 0, 1], [0, 0, 2], [0, 1, 0])
        array.add_chunk([2, 3], [1, 2], [1, 0])
        array.remove_chunk([0, 0, 1], [0, 0, 2], [0, 1, 0])
        assert array.n_total == 2
        assert array.totals[0, 0] == 0
        assert array.count_grid(1)[2, 1] == 1
        array.remove_chunk([2, 3], [1, 2], [1, 0])
        assert array.n_total == 0
        assert not array.counts.any()
        assert not array.totals.any()

    def test_partial_chunk_removal(self):
        """A chunk can expire in pieces — the sliding window's split."""
        array = make_bin_array()
        array.add_chunk([0, 1, 2, 3], [0, 1, 2, 0], [0, 1, 0, 1])
        array.remove_chunk([0, 1], [0, 1], [0, 1])
        assert array.n_total == 2
        assert array.totals[2, 2] == 1
        assert array.totals[0, 0] == 0

    def test_underflow_rejected_and_array_untouched(self):
        array = make_bin_array()
        array.add_chunk([0, 1], [0, 1], [0, 1])
        before_counts = array.counts.copy()
        before_totals = array.totals.copy()
        # Cell (2, 2) was never accumulated: check-then-apply must
        # leave every counter exactly as it was.
        with pytest.raises(ValueError, match="negative"):
            array.remove_chunk([0, 2], [0, 2], [0, 0])
        assert np.array_equal(array.counts, before_counts)
        assert np.array_equal(array.totals, before_totals)
        assert array.n_total == 2

    def test_code_mismatch_in_occupied_cell_rejected(self):
        """The cell total would survive, but the per-code count would
        not — the check covers both grids."""
        array = make_bin_array()
        array.add_chunk([0], [0], [0])
        with pytest.raises(ValueError, match="negative"):
            array.remove_chunk([0], [0], [1])

    def test_single_target_mode_removal(self):
        array = make_bin_array(target=0)
        array.add_chunk([0, 0], [0, 0], [0, 1])
        array.remove_chunk([0], [0], [1])  # non-target tuple
        assert array.totals[0, 0] == 1
        assert array.count_grid(0)[0, 0] == 1
        array.remove_chunk([0], [0], [0])
        assert array.totals[0, 0] == 0
        assert array.count_grid(0)[0, 0] == 0

    def test_single_target_mode_underflow_on_target_count(self):
        array = make_bin_array(target=0)
        array.add_chunk([0, 0], [0, 0], [1, 1])
        # Two tuples in the cell, but neither was the target: removing
        # a "target" tuple must fail even though totals could bear it.
        with pytest.raises(ValueError, match="negative"):
            array.remove_chunk([0], [0], [0])


class TestQueries:
    @pytest.fixture()
    def filled(self):
        array = make_bin_array()
        # Cell (0,0): 3 of A + 1 other; cell (1,1): 2 other.
        array.add_chunk(
            [0, 0, 0, 0, 1, 1],
            [0, 0, 0, 0, 1, 1],
            [0, 0, 0, 1, 1, 1],
        )
        return array

    def test_cell_support(self, filled):
        assert filled.cell_support(0, 0, 0) == pytest.approx(3 / 6)
        assert filled.cell_support(1, 1, 0) == 0.0

    def test_cell_confidence(self, filled):
        assert filled.cell_confidence(0, 0, 0) == pytest.approx(3 / 4)
        assert filled.cell_confidence(1, 1, 0) == 0.0
        assert filled.cell_confidence(3, 2, 0) == 0.0  # empty cell

    def test_support_grid_matches_cell_support(self, filled):
        grid = filled.support_grid(0)
        assert grid[0, 0] == pytest.approx(filled.cell_support(0, 0, 0))

    def test_confidence_grid_zero_on_empty_cells(self, filled):
        grid = filled.confidence_grid(0)
        assert grid[3, 2] == 0.0
        assert grid[0, 0] == pytest.approx(0.75)

    def test_occupied_cells(self, filled):
        assert filled.occupied_cells(0) == 1
        assert filled.occupied_cells(1) == 2

    def test_empty_array_supports(self):
        array = make_bin_array()
        assert array.support_grid(0).sum() == 0.0
        assert array.cell_support(0, 0, 0) == 0.0


class TestThresholdEnumeration:
    def test_unique_support_counts(self):
        array = make_bin_array()
        array.add_chunk(
            [0, 0, 1, 1, 1, 2],
            [0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 0],
        )
        assert list(array.unique_support_counts(0)) == [1, 2, 3]

    def test_unique_confidences_filters_by_count(self):
        array = make_bin_array()
        # Cell (0,0): 2 A of 4 (conf 0.5); cell (1,0): 1 A of 1 (conf 1.0).
        array.add_chunk(
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 0],
            [0, 0, 1, 1, 0],
        )
        all_confs = array.unique_confidences(0, min_count=1)
        assert list(all_confs) == [0.5, 1.0]
        high_only = array.unique_confidences(0, min_count=2)
        assert list(high_only) == [0.5]

    def test_unique_confidences_empty(self):
        array = make_bin_array()
        assert len(array.unique_confidences(0)) == 0


class TestRegionCounts:
    def test_rectangle_aggregation(self):
        array = make_bin_array()
        array.add_chunk(
            [0, 0, 1, 1, 3],
            [0, 1, 0, 1, 2],
            [0, 0, 0, 1, 0],
        )
        target, total = array.region_counts(0, 1, 0, 1, 0)
        assert target == 3
        assert total == 4

    def test_out_of_bounds_rejected(self):
        array = make_bin_array()
        with pytest.raises(ValueError):
            array.region_counts(0, 4, 0, 0, 0)
        with pytest.raises(ValueError):
            array.region_counts(1, 0, 0, 0, 0)
