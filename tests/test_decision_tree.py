"""Unit tests for the C4.5-style decision tree."""

import numpy as np
import pytest

from repro.baselines.decision_tree import (
    C45Tree,
    TreeConfig,
    pessimistic_errors,
)
from repro.data.schema import Table, categorical, quantitative


def xor_free_table():
    """A table a single split separates perfectly."""
    return Table.from_columns(
        [quantitative("x", 0, 10), categorical("label", ("a", "b"))],
        {
            "x": [1, 2, 3, 4, 6, 7, 8, 9],
            "label": ["a", "a", "a", "a", "b", "b", "b", "b"],
        },
    )


def grid_table():
    """Two rectangles requiring nested splits."""
    points = []
    labels = []
    for x in np.linspace(0, 10, 21):
        for y in np.linspace(0, 10, 21):
            points.append((x, y))
            labels.append("in" if (2 <= x <= 5 and 3 <= y <= 8) else "out")
    xs, ys = zip(*points)
    return Table.from_columns(
        [quantitative("x", 0, 10), quantitative("y", 0, 10),
         categorical("label", ("in", "out"))],
        {"x": list(xs), "y": list(ys), "label": labels},
    )


class TestPessimisticErrors:
    def test_c45_known_value(self):
        """The canonical C4.5 check: U_25%(0, 1) = 0.75."""
        assert pessimistic_errors(1, 0, 0.25) == pytest.approx(0.75)

    def test_zero_cases(self):
        assert pessimistic_errors(0, 0, 0.25) == 0.0

    def test_all_errors_saturates(self):
        assert pessimistic_errors(10, 10, 0.25) == 10.0

    def test_monotone_in_observed_errors(self):
        assert pessimistic_errors(100, 10, 0.25) > pessimistic_errors(
            100, 5, 0.25
        )

    def test_bound_exceeds_observed(self):
        assert pessimistic_errors(100, 10, 0.25) > 10.0

    def test_tightens_with_more_data(self):
        """Same error rate, more data -> bound rate closer to observed."""
        loose = pessimistic_errors(10, 1, 0.25) / 10
        tight = pessimistic_errors(1000, 100, 0.25) / 1000
        assert tight < loose


class TestTreeConfig:
    @pytest.mark.parametrize("kwargs", [
        {"min_leaf": 0},
        {"confidence_factor": 0.0},
        {"confidence_factor": 0.6},
        {"max_thresholds": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TreeConfig(**kwargs)


class TestFitAndPredict:
    def test_single_split_problem(self):
        table = xor_free_table()
        tree = C45Tree().fit(table, ["x"], "label")
        assert (tree.predict(table) == table.column("label")).all()
        assert tree.n_leaves == 2
        root = tree.root
        assert root.attribute == "x"
        assert 4 < root.threshold < 6

    def test_rectangle_problem(self):
        table = grid_table()
        tree = C45Tree().fit(table, ["x", "y"], "label")
        accuracy = float(
            np.mean(tree.predict(table) == table.column("label"))
        )
        assert accuracy > 0.98

    def test_pure_node_is_leaf(self):
        table = Table.from_columns(
            [quantitative("x"), categorical("label", ("a",))],
            {"x": [1, 2, 3], "label": ["a", "a", "a"]},
        )
        tree = C45Tree().fit(table, ["x"], "label")
        assert tree.root.is_leaf
        assert tree.root.label == "a"

    def test_max_depth_respected(self):
        table = grid_table()
        tree = C45Tree(TreeConfig(max_depth=2)).fit(
            table, ["x", "y"], "label"
        )
        assert tree.depth <= 2

    def test_min_leaf_respected(self):
        table = grid_table()
        tree = C45Tree(TreeConfig(min_leaf=30)).fit(
            table, ["x", "y"], "label"
        )

        def check(node):
            assert node.n_tuples >= 30
            for child in node.children:
                check(child)

        check(tree.root)

    def test_categorical_split(self):
        table = Table.from_columns(
            [categorical("color", ("red", "green", "blue")),
             categorical("label", ("warm", "cool"))],
            {
                "color": ["red"] * 10 + ["green"] * 10 + ["blue"] * 10,
                "label": ["warm"] * 10 + ["cool"] * 20,
            },
        )
        tree = C45Tree().fit(table, ["color"], "label")
        assert (tree.predict(table) == table.column("label")).all()

    def test_unseen_categorical_value_falls_back(self):
        train = Table.from_columns(
            [categorical("color"), categorical("label", ("w", "c"))],
            {
                "color": ["red"] * 10 + ["green"] * 5,
                "label": ["w"] * 10 + ["c"] * 5,
            },
        )
        tree = C45Tree().fit(train, ["color"], "label")
        test = Table.from_columns(
            [categorical("color"), categorical("label", ("w", "c"))],
            {"color": ["blue"], "label": ["w"]},
        )
        got = tree.predict(test)
        assert got[0] in ("w", "c")

    def test_predict_before_fit_raises(self, tiny_table):
        with pytest.raises(ValueError):
            C45Tree().predict(tiny_table)

    def test_empty_table_rejected(self):
        table = Table.from_columns(
            [quantitative("x"), categorical("label", ("a",))],
            {"x": [], "label": []},
        )
        with pytest.raises(ValueError):
            C45Tree().fit(table, ["x"], "label")


class TestPruning:
    def test_pruning_shrinks_noisy_tree(self, f2_table):
        sample = f2_table.head(4000)
        unpruned = C45Tree(TreeConfig(prune=False)).fit(
            sample, ["age", "salary"], "group"
        )
        pruned = C45Tree(TreeConfig(prune=True)).fit(
            sample, ["age", "salary"], "group"
        )
        assert pruned.n_leaves < unpruned.n_leaves

    def test_pruning_keeps_generalisation(self, f2_table):
        train = f2_table.head(4000)
        test = f2_table.take(range(10_000, 14_000))
        pruned = C45Tree().fit(train, ["age", "salary"], "group")
        accuracy = float(
            np.mean(pruned.predict(test) == test.column("group"))
        )
        assert accuracy > 0.85
