"""Unit tests for the synthetic data generator (paper Table 1)."""

import numpy as np
import pytest

import repro
from repro.data.functions import classification_function
from repro.data.synthetic import (
    DEMOGRAPHIC_ATTRIBUTES,
    SyntheticConfig,
    generate_synthetic,
    group_fractions,
)


class TestSyntheticConfig:
    def test_defaults_match_paper(self):
        config = SyntheticConfig(n_tuples=1000)
        assert config.function_id == 2
        assert config.perturbation == 0.05
        assert config.outlier_fraction == 0.0
        assert config.perturbed_attributes == ("age", "salary")

    @pytest.mark.parametrize("bad", [0, -5])
    def test_rejects_nonpositive_size(self, bad):
        with pytest.raises(ValueError):
            SyntheticConfig(n_tuples=bad)

    def test_rejects_bad_perturbation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_tuples=10, perturbation=1.0)

    def test_rejects_bad_outlier_fraction(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_tuples=10, outlier_fraction=-0.1)


class TestGeneration:
    def test_schema(self):
        table = generate_synthetic(SyntheticConfig(n_tuples=100))
        expected = [spec.name for spec in DEMOGRAPHIC_ATTRIBUTES]
        assert table.attribute_names == expected + ["group"]
        assert len(table) == 100

    def test_reproducible_by_seed(self):
        config = SyntheticConfig(n_tuples=500, seed=3)
        a = generate_synthetic(config)
        b = generate_synthetic(config)
        assert (a.column("salary") == b.column("salary")).all()
        assert (a.column("group") == b.column("group")).all()

    def test_different_seeds_differ(self):
        a = generate_synthetic(SyntheticConfig(n_tuples=500, seed=1))
        b = generate_synthetic(SyntheticConfig(n_tuples=500, seed=2))
        assert not (a.column("salary") == b.column("salary")).all()

    def test_attribute_ranges(self):
        table = generate_synthetic(SyntheticConfig(n_tuples=2000, seed=5))
        salary = table.column("salary")
        assert salary.min() >= 20_000 and salary.max() <= 150_000
        age = table.column("age")
        assert age.min() >= 20 and age.max() <= 80
        elevel = table.column("elevel")
        assert set(np.unique(elevel)) <= {0.0, 1.0, 2.0, 3.0, 4.0}
        hyears = table.column("hyears")
        assert hyears.min() >= 1 and hyears.max() <= 30

    def test_commission_zero_for_high_earners(self):
        # Perturbation moves salary after commission is drawn, so the
        # invariant is only exact on unperturbed data.
        table = generate_synthetic(
            SyntheticConfig(n_tuples=2000, perturbation=0.0, seed=5)
        )
        salary = table.column("salary")
        commission = table.column("commission")
        assert (commission[salary >= 75_000] == 0).all()
        low_paid = commission[salary < 75_000]
        assert (low_paid >= 10_000).all() and (low_paid <= 75_000).all()

    def test_zipcode_domain(self):
        table = generate_synthetic(SyntheticConfig(n_tuples=500, seed=5))
        assert set(table.column("zipcode").tolist()) <= set(range(9))

    def test_group_fraction_near_paper_value(self):
        """Paper Table 1: ~40% Group A / 60% other for Function 2."""
        table = generate_synthetic(
            SyntheticConfig(n_tuples=50_000, perturbation=0.0, seed=9)
        )
        fractions = group_fractions(table)
        assert 0.35 < fractions["A"] < 0.43
        assert abs(fractions["A"] + fractions["other"] - 1.0) < 1e-12


class TestLabelsVsFunction:
    def test_unperturbed_labels_match_function_exactly(self):
        config = SyntheticConfig(n_tuples=5_000, perturbation=0.0, seed=4)
        table = generate_synthetic(config)
        in_a = classification_function(2)(table)
        labels = table.column("group")
        assert ((labels == "A") == in_a).all()

    def test_perturbation_creates_label_noise(self):
        """After perturbation some tuples near boundaries no longer match
        their label — that is the point of the perturbation model."""
        config = SyntheticConfig(
            n_tuples=20_000, perturbation=0.05, seed=4
        )
        table = generate_synthetic(config)
        in_a = classification_function(2)(table)
        labels = table.column("group")
        mismatch = float(np.mean((labels == "A") != in_a))
        assert 0.005 < mismatch < 0.20

    def test_outliers_flip_roughly_u_fraction(self):
        clean = generate_synthetic(
            SyntheticConfig(n_tuples=10_000, perturbation=0.0, seed=6)
        )
        noisy = generate_synthetic(
            SyntheticConfig(
                n_tuples=10_000, perturbation=0.0,
                outlier_fraction=0.10, seed=6,
            )
        )
        flipped = float(
            np.mean(clean.column("group") != noisy.column("group"))
        )
        assert abs(flipped - 0.10) < 0.005

    def test_outlier_tuples_do_not_match_their_rules(self):
        """An outlier's label contradicts the generating function."""
        table = generate_synthetic(
            SyntheticConfig(
                n_tuples=10_000, perturbation=0.0,
                outlier_fraction=0.10, seed=6,
            )
        )
        in_a = classification_function(2)(table)
        labels = table.column("group")
        mismatch = float(np.mean((labels == "A") != in_a))
        assert abs(mismatch - 0.10) < 0.005
