"""Unit tests for the consolidated evaluation report."""

import pytest

import repro
from repro.analysis.report import evaluation_report
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.functions import true_regions


@pytest.fixture(scope="module")
def fitted():
    table = repro.generate_synthetic(
        repro.SyntheticConfig(n_tuples=10_000, seed=77)
    )
    config = ARCSConfig(
        n_bins_x=30, n_bins_y=30,
        optimizer=OptimizerConfig(max_support_levels=4,
                                  max_confidence_levels=4),
    )
    return table, ARCS(config).fit(table, "age", "salary", "group", "A")


class TestEvaluationReport:
    def test_minimal_report(self, fitted):
        _, result = fitted
        text = evaluation_report(result, include_history=False)
        assert "group = A" in text
        assert "winning thresholds" in text
        assert "verifier estimate" in text
        assert "optimizer transcript" not in text

    def test_history_included_by_default(self, fitted):
        _, result = fitted
        text = evaluation_report(result)
        assert "optimizer transcript" in text
        assert f"({len(result.history)} trials)" in text

    def test_noise_decomposition_section(self, fitted):
        table, result = fitted
        text = evaluation_report(result, table=table, function_id=2)
        assert "noise decomposition" in text
        assert "floor" in text

    def test_region_accuracy_section(self, fitted):
        _, result = fitted
        text = evaluation_report(
            result,
            true_regions=true_regions(2),
            x_range=(20, 80), y_range=(20_000, 150_000),
        )
        assert "exact region accuracy" in text
        assert "Jaccard" in text

    def test_full_report_composes_all_sections(self, fitted):
        table, result = fitted
        text = evaluation_report(
            result, table=table, function_id=2,
            true_regions=true_regions(2),
            x_range=(20, 80), y_range=(20_000, 150_000),
        )
        for fragment in ("noise decomposition", "exact region accuracy",
                         "optimizer transcript", "MDL cost"):
            assert fragment in text
