"""Unit tests for the clustering pipeline (mine → smooth → BitOp → prune)."""

import numpy as np
import pytest

from repro.binning import bin_table
from repro.core.clusterer import (
    ClustererConfig,
    GridClusterer,
    clustered_rule_from_rect,
)
from repro.core.rules import GridRect
from repro.data.functions import true_regions


@pytest.fixture()
def clean_setup(f2_binner):
    code = f2_binner.rhs_encoding.code_of("A")
    return f2_binner.bin_array, code


class TestPipeline:
    def test_finds_three_clusters_on_clean_data(self, clean_setup):
        """Unperturbed Function 2 must yield exactly the three generating
        regions (the paper's headline claim, in its easiest setting)."""
        bin_array, code = clean_setup
        outcome = GridClusterer().cluster(
            bin_array, code, min_support=0.0005, min_confidence=0.6
        )
        assert outcome.n_rules == 3

    def test_rules_near_generating_regions(self, clean_setup):
        bin_array, code = clean_setup
        outcome = GridClusterer().cluster(bin_array, code, 0.0005, 0.6)
        regions = {
            (region.x_lo, region.x_hi): region
            for region in true_regions(2)
        }
        # Bin width: age 2.0 (30 bins over 60), salary ~4333.
        for rule in outcome.rules:
            matches = [
                region for region in regions.values()
                if abs(rule.x_interval.low - region.x_lo) <= 2.5
                and abs(rule.x_interval.high - region.x_hi) <= 2.5
                and abs(rule.y_interval.low - region.y_lo) <= 9000
                and abs(rule.y_interval.high - region.y_hi) <= 9000
            ]
            assert matches, f"rule {rule} matches no generating region"

    def test_outcome_exposes_all_stages(self, clean_setup):
        bin_array, code = clean_setup
        outcome = GridClusterer().cluster(bin_array, code, 0.0005, 0.6)
        assert outcome.raw_grid.n_set > 0
        assert outcome.smoothed_grid.n_set > 0
        assert len(outcome.clusters) >= outcome.n_rules
        assert outcome.pruning.min_cells >= 1

    def test_rule_measures_within_bounds(self, clean_setup):
        bin_array, code = clean_setup
        outcome = GridClusterer().cluster(bin_array, code, 0.0005, 0.6)
        for rule in outcome.rules:
            assert 0.0 < rule.support <= 1.0
            assert 0.0 < rule.confidence <= 1.0

    def test_without_smoothing_guarantee_holds(self, clean_setup):
        """Paper Section 2.1: clustered rules keep at least the threshold
        confidence — exactly true when smoothing is off."""
        bin_array, code = clean_setup
        config = ClustererConfig(smoothing=False, merge_clusters=False,
                                 prune_fraction=0.0)
        outcome = GridClusterer(config).cluster(bin_array, code,
                                                0.0005, 0.6)
        for rule in outcome.rules:
            assert rule.confidence >= 0.6
            assert rule.support >= 0.0005

    def test_impossible_thresholds_give_empty_outcome(self, clean_setup):
        bin_array, code = clean_setup
        outcome = GridClusterer().cluster(bin_array, code, 0.9, 0.99)
        assert outcome.n_rules == 0
        assert outcome.raw_grid.is_empty()

    def test_support_weighted_variant_runs(self, clean_setup):
        bin_array, code = clean_setup
        config = ClustererConfig(support_weighted=True)
        outcome = GridClusterer(config).cluster(bin_array, code,
                                                0.0005, 0.6)
        assert outcome.n_rules >= 1

    def test_pruning_disabled_keeps_slivers(self, clean_setup):
        bin_array, code = clean_setup
        pruned = GridClusterer(
            ClustererConfig(merge_clusters=False)
        ).cluster(bin_array, code, 0.0005, 0.6)
        unpruned = GridClusterer(
            ClustererConfig(merge_clusters=False, prune_fraction=0.0)
        ).cluster(bin_array, code, 0.0005, 0.6)
        assert unpruned.n_rules >= pruned.n_rules


class TestClusteredRuleFromRect:
    def test_interval_translation(self, clean_setup):
        bin_array, code = clean_setup
        rect = GridRect(0, 2, 0, 1)
        rule = clustered_rule_from_rect(rect, bin_array, code)
        x_low, _ = bin_array.x_layout.bin_interval(0)
        _, x_high = bin_array.x_layout.bin_interval(2)
        assert rule.x_interval.low == x_low
        assert rule.x_interval.high == x_high
        assert rule.rect == rect

    def test_last_bin_closes_interval(self, clean_setup):
        bin_array, code = clean_setup
        last = bin_array.n_x - 1
        rule = clustered_rule_from_rect(
            GridRect(last, last, 0, 0), bin_array, code
        )
        assert rule.x_interval.closed_high
        assert not rule.y_interval.closed_high

    def test_measures_match_region_counts(self, clean_setup):
        bin_array, code = clean_setup
        rect = GridRect(0, 4, 0, 4)
        rule = clustered_rule_from_rect(rect, bin_array, code)
        target, total = bin_array.region_counts(0, 4, 0, 4, code)
        assert rule.support == pytest.approx(target / bin_array.n_total)
        if total:
            assert rule.confidence == pytest.approx(target / total)
