"""Unit tests for segmentation and BinArray persistence."""

import numpy as np
import pytest

from repro.binning import bin_table
from repro.core.rules import ClusteredRule, GridRect, Interval
from repro.core.segmentation import Segmentation
from repro.mining.engine import rule_pairs
from repro.data.summary import ReferenceProfile, reference_profile
from repro.persistence import (
    PersistenceError,
    load_bin_array,
    load_segmentation,
    save_bin_array,
    save_segmentation,
    segmentation_metadata,
    segmentation_reference,
)


@pytest.fixture()
def segmentation():
    rules = [
        ClusteredRule(
            "age", "salary", Interval(20, 40),
            Interval(50_000, 100_000, closed_high=True),
            "group", "A", support=0.12, confidence=0.93,
            rect=GridRect(0, 9, 10, 29),
        ),
        ClusteredRule(
            "age", "salary", Interval(60, 80), Interval(25_000, 75_000),
            "group", "A", support=0.10, confidence=0.91,
        ),
    ]
    return Segmentation.from_rules(rules)


class TestSegmentationRoundTrip:
    def test_round_trip_preserves_rules(self, segmentation, tmp_path):
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        loaded = load_segmentation(path)
        assert len(loaded) == 2
        assert loaded.x_attribute == "age"
        assert loaded.rhs_value == "A"
        original = segmentation.rules[0]
        restored = loaded.rules[0]
        assert restored.x_interval == original.x_interval
        assert restored.y_interval.closed_high
        assert restored.support == original.support
        assert restored.rect == original.rect

    def test_rect_optional(self, segmentation, tmp_path):
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        loaded = load_segmentation(path)
        assert loaded.rules[1].rect is None

    def test_membership_identical_after_round_trip(self, segmentation,
                                                   tmp_path):
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        loaded = load_segmentation(path)
        xs = np.linspace(15, 85, 71)
        ys = np.linspace(20_000, 150_000, 71)
        assert np.array_equal(
            segmentation.covers(xs, ys), loaded.covers(xs, ys)
        )

    def test_empty_segmentation_round_trip(self, tmp_path):
        empty = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        path = tmp_path / "empty.json"
        save_segmentation(empty, path)
        assert load_segmentation(path).is_empty

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(PersistenceError):
            load_segmentation(path)

    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_segmentation(path)


class TestSegmentationMetadata:
    def test_save_stamps_provenance(self, segmentation, tmp_path):
        import repro
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        metadata = segmentation_metadata(path)
        assert metadata["library_version"] == repro.__version__
        assert isinstance(metadata["created_unix"], float)
        assert metadata["created_unix"] > 0

    def test_legacy_artefact_without_metadata_still_loads(
            self, segmentation, tmp_path):
        import json
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        payload = json.loads(path.read_text())
        del payload["metadata"]
        path.write_text(json.dumps(payload))
        assert len(load_segmentation(path)) == 2
        assert segmentation_metadata(path) == {}

    def test_non_dict_metadata_treated_as_absent(self, segmentation,
                                                 tmp_path):
        import json
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        payload = json.loads(path.read_text())
        payload["metadata"] = "1.0"
        path.write_text(json.dumps(payload))
        assert segmentation_metadata(path) == {}

    def test_validates_format_tag(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(PersistenceError):
            segmentation_metadata(path)


class TestBinArrayRoundTrip:
    def test_round_trip_preserves_counts(self, f2_binner, tmp_path):
        path = tmp_path / "bins.npz"
        save_bin_array(f2_binner.bin_array, path)
        loaded = load_bin_array(path)
        assert np.array_equal(loaded.counts, f2_binner.bin_array.counts)
        assert np.array_equal(loaded.totals, f2_binner.bin_array.totals)
        assert loaded.n_total == f2_binner.bin_array.n_total
        assert loaded.rhs_encoding.values == ("A", "other")

    def test_remining_from_loaded_array_matches(self, f2_binner,
                                                tmp_path):
        """The cross-process re-mining workflow: identical rule cells."""
        path = tmp_path / "bins.npz"
        save_bin_array(f2_binner.bin_array, path)
        loaded = load_bin_array(path)
        original_pairs = rule_pairs(f2_binner.bin_array, 0, 0.001, 0.7)
        loaded_pairs = rule_pairs(loaded, 0, 0.001, 0.7)
        assert original_pairs == loaded_pairs

    def test_layouts_survive(self, f2_binner, tmp_path):
        path = tmp_path / "bins.npz"
        save_bin_array(f2_binner.bin_array, path)
        loaded = load_bin_array(path)
        assert loaded.x_layout.attribute == "age"
        assert np.allclose(
            loaded.x_layout.edges, f2_binner.bin_array.x_layout.edges
        )

    def test_single_target_mode_survives(self, f2_clean_table, tmp_path):
        binner = bin_table(
            f2_clean_table, "age", "salary", "group", 10, 10,
            target_value="A",
        )
        path = tmp_path / "single.npz"
        save_bin_array(binner.bin_array, path)
        loaded = load_bin_array(path)
        assert loaded.single_target
        assert loaded.target_code == 0

    def test_rejects_non_binarray_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(PersistenceError):
            load_bin_array(path)


class TestReferenceProfilePersistence:
    def test_saved_bin_array_embeds_a_reference(self, segmentation,
                                                f2_binner, tmp_path):
        path = tmp_path / "seg.json"
        bin_array = f2_binner.bin_array
        save_segmentation(segmentation, path, bin_array=bin_array)
        reference = segmentation_reference(path)
        assert reference is not None
        assert reference.x_attribute == "age"
        assert reference.n_total == int(bin_array.totals.sum())
        assert np.array_equal(reference.totals, bin_array.totals)
        assert np.array_equal(reference.x_edges,
                              bin_array.x_layout.edges)
        # The artefact itself still loads as a plain segmentation.
        assert len(load_segmentation(path)) == len(segmentation)

    def test_explicit_reference_wins_over_bin_array(self, segmentation,
                                                    f2_binner, tmp_path):
        path = tmp_path / "seg.json"
        distilled = reference_profile(f2_binner.bin_array)
        save_segmentation(segmentation, path, reference=distilled)
        restored = segmentation_reference(path)
        assert np.array_equal(restored.totals, distilled.totals)

    def test_absent_reference_is_tolerated(self, segmentation,
                                           tmp_path):
        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        assert segmentation_reference(path) is None

    def test_malformed_reference_block_raises(self, segmentation,
                                              tmp_path):
        import json as json_module

        path = tmp_path / "seg.json"
        save_segmentation(segmentation, path)
        payload = json_module.loads(path.read_text())
        payload["reference_profile"] = {"x_attribute": "age"}
        path.write_text(json_module.dumps(payload))
        with pytest.raises(PersistenceError, match="malformed"):
            segmentation_reference(path)

    def test_profile_dict_round_trip(self, f2_binner):
        profile = reference_profile(f2_binner.bin_array)
        restored = ReferenceProfile.from_dict(profile.to_dict())
        assert restored.x_attribute == profile.x_attribute
        assert np.array_equal(restored.totals, profile.totals)
        assert np.array_equal(restored.y_edges, profile.y_edges)
        assert restored.n_total == profile.n_total

    def test_profile_marginals_and_occupancy(self, f2_binner):
        profile = reference_profile(f2_binner.bin_array)
        assert np.array_equal(profile.x_counts,
                              profile.totals.sum(axis=1))
        assert np.array_equal(profile.y_counts,
                              profile.totals.sum(axis=0))
        occupancy = profile.occupancy()
        assert occupancy.n_tuples == profile.n_total
        assert 0.0 < occupancy.occupancy_fraction <= 1.0
        # Snapshot arrays are frozen: serving threads share them.
        with pytest.raises(ValueError):
            profile.totals[0, 0] = 99

    def test_profile_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ReferenceProfile(
                x_attribute="x", y_attribute="y",
                x_edges=np.array([0.0, 1.0, 2.0]),
                y_edges=np.array([0.0, 1.0]),
                totals=np.ones((3, 3)), n_total=9,
            )
