"""End-to-end integration: the full paper pipeline on fresh data.

These tests exercise the whole system the way the paper's evaluation
does: generate data, fit ARCS, compare against C4.5, check the exact
region accuracy, and run the streaming path from CSV.
"""

import numpy as np
import pytest

import repro
from repro.analysis.accuracy import exact_region_error
from repro.baselines import C45Rules, C45Tree, classification_error
from repro.binning.binner import Binner
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.functions import true_regions
from repro.data.io import stream_csv, write_csv
from repro.data.synthetic import DEMOGRAPHIC_ATTRIBUTES, GROUP_ATTRIBUTE

FAST = ARCSConfig(
    optimizer=OptimizerConfig(max_support_levels=6,
                              max_confidence_levels=6),
)


@pytest.fixture(scope="module")
def experiment():
    train = repro.generate_synthetic(
        repro.SyntheticConfig(n_tuples=15_000, seed=100)
    )
    test = repro.generate_synthetic(
        repro.SyntheticConfig(n_tuples=8_000, seed=101)
    )
    result = ARCS(FAST).fit(train, "age", "salary", "group", "A")
    return train, test, result


class TestArcsVsTruth:
    def test_exact_region_error_small(self, experiment):
        _, _, result = experiment
        report = exact_region_error(
            result.segmentation, true_regions(2),
            x_range=(20, 80), y_range=(20_000, 150_000),
        )
        assert report.total_error_area < 0.06
        assert report.jaccard > 0.8

    def test_generalises_to_held_out_data(self, experiment):
        _, test, result = experiment
        covered = result.segmentation.covers_table(test)
        actual = np.asarray(
            [label == "A" for label in test.column("group")]
        )
        error = float(np.mean(covered != actual))
        assert error < 0.12


class TestArcsVsC45:
    @pytest.fixture(scope="class")
    def c45(self, experiment):
        train, _, _ = experiment
        sample = train.head(5000)
        tree = C45Tree().fit(sample, ["age", "salary"], "group")
        return sample, tree, C45Rules.from_tree(tree, sample)

    def test_error_rates_comparable(self, experiment, c45):
        _, test, result = experiment
        _, _, rules = c45
        arcs_error = float(np.mean(
            result.segmentation.covers_table(test)
            != np.asarray(
                [label == "A" for label in test.column("group")]
            )
        ))
        c45_error = classification_error(
            rules.predict(test), test, "group", "A"
        )
        # Paper Figure 11: both systems land in the same error band.
        assert abs(arcs_error - c45_error) < 0.08

    def test_arcs_produces_far_fewer_rules(self, experiment, c45):
        """Paper Figures 13/14: a handful of ARCS rules vs dozens from
        C4.5."""
        _, _, result = experiment
        _, _, rules = c45
        assert len(result.segmentation) <= 5
        assert len(rules) > 2 * len(result.segmentation)


class TestStreamingPath:
    def test_csv_stream_reproduces_in_memory_binning(self, experiment,
                                                     tmp_path):
        train, _, result = experiment
        subset = train.head(4000)
        path = tmp_path / "train.csv"
        write_csv(subset, path)

        specs = list(DEMOGRAPHIC_ATTRIBUTES) + [GROUP_ATTRIBUTE]
        streamed = Binner.fit(
            subset, "age", "salary", "group", 50, 50
        )
        for chunk in stream_csv(path, specs, chunk_rows=512):
            streamed.consume(chunk)

        direct = Binner.fit(subset, "age", "salary", "group", 50, 50)
        direct.consume(subset)
        assert np.array_equal(
            streamed.bin_array.counts, direct.bin_array.counts
        )

    def test_memory_footprint_independent_of_data_size(self):
        """The paper's constant-memory claim: the BinArray's size depends
        only on the bin counts, never on |D|."""
        small = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=1_000, seed=1)
        )
        large = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=50_000, seed=2)
        )
        binner_small = Binner.fit(small, "age", "salary", "group", 50, 50)
        binner_small.consume(small)
        binner_large = Binner.fit(large, "age", "salary", "group", 50, 50)
        binner_large.consume(large)
        assert (binner_small.bin_array.memory_cells()
                == binner_large.bin_array.memory_cells())
