"""Unit tests for the sampled verifier (paper Section 3.6)."""

import numpy as np
import pytest

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.core.verifier import Verifier
from repro.data.schema import Table, categorical, quantitative


def make_table(points, labels):
    specs = [
        quantitative("age", 0, 100),
        quantitative("salary", 0, 100),
        categorical("group", ("A", "other")),
    ]
    ages, salaries = zip(*points)
    return Table.from_columns(specs, {
        "age": list(ages), "salary": list(salaries),
        "group": list(labels),
    })


def segmentation_over(x_lo, x_hi, y_lo, y_hi):
    rule = ClusteredRule(
        "age", "salary", Interval(x_lo, x_hi), Interval(y_lo, y_hi),
        "group", "A", support=0.5, confidence=0.9,
    )
    return Segmentation.from_rules([rule])


class TestExactErrorRate:
    def test_perfect_segmentation(self):
        table = make_table(
            [(10, 10), (10, 20), (90, 90)], ["A", "A", "other"]
        )
        seg = segmentation_over(0, 50, 0, 50)
        verifier = Verifier(table, "group", "A")
        assert verifier.exact_error_rate(seg) == 0.0

    def test_false_positive_counted(self):
        table = make_table([(10, 10), (20, 20)], ["A", "other"])
        seg = segmentation_over(0, 50, 0, 50)  # covers both
        verifier = Verifier(table, "group", "A")
        assert verifier.exact_error_rate(seg) == pytest.approx(0.5)

    def test_false_negative_counted(self):
        table = make_table([(10, 10), (90, 90)], ["A", "A"])
        seg = segmentation_over(0, 50, 0, 50)  # misses the second
        verifier = Verifier(table, "group", "A")
        assert verifier.exact_error_rate(seg) == pytest.approx(0.5)

    def test_empty_segmentation_errs_on_all_targets(self):
        table = make_table(
            [(10, 10), (20, 20), (30, 30), (40, 40)],
            ["A", "A", "other", "other"],
        )
        empty = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        verifier = Verifier(table, "group", "A")
        assert verifier.exact_error_rate(empty) == pytest.approx(0.5)


class TestSampledVerification:
    def test_full_sample_matches_exact(self):
        table = make_table(
            [(10, 10), (20, 20), (90, 90), (80, 80)],
            ["A", "other", "A", "other"],
        )
        seg = segmentation_over(0, 50, 0, 50)
        verifier = Verifier(table, "group", "A", sample_size=4, repeats=3)
        report = verifier.verify(seg)
        assert report.error_rate == pytest.approx(
            verifier.exact_error_rate(seg)
        )
        assert report.error_rate_stderr == 0.0  # every sample identical

    def test_report_counts_split_fp_fn(self):
        table = make_table(
            [(10, 10), (20, 20), (90, 90)], ["A", "other", "A"]
        )
        seg = segmentation_over(0, 50, 0, 50)
        verifier = Verifier(table, "group", "A", sample_size=3, repeats=2)
        report = verifier.verify(seg)
        assert report.mean_false_positives == 1.0
        assert report.mean_false_negatives == 1.0
        assert report.mean_errors == 2.0

    def test_sample_size_clamped_to_table(self):
        table = make_table([(10, 10)], ["A"])
        verifier = Verifier(table, "group", "A", sample_size=1000)
        assert verifier.sample_size == 1

    def test_deterministic_for_fixed_seed(self, f2_table):
        seg = segmentation_over(20, 40, 50_000, 100_000)
        # Domain differs but intervals still apply.
        a = Verifier(f2_table, "group", "A", sample_size=500,
                     repeats=3, seed=5).verify(seg)
        b = Verifier(f2_table, "group", "A", sample_size=500,
                     repeats=3, seed=5).verify(seg)
        assert a.error_rate == b.error_rate

    def test_estimate_tracks_exact_rate(self, f2_table):
        """Repeated k-of-n sampling approximates the full-table rate."""
        seg = segmentation_over(20, 40, 50_000, 100_000)
        verifier = Verifier(f2_table, "group", "A", sample_size=2000,
                            repeats=10, seed=1)
        report = verifier.verify(seg)
        exact = verifier.exact_error_rate(seg)
        assert abs(report.error_rate - exact) < 0.02

    def test_more_repeats_reduce_stderr(self, f2_table):
        seg = segmentation_over(20, 40, 50_000, 100_000)
        few = Verifier(f2_table, "group", "A", sample_size=500,
                       repeats=3, seed=2).verify(seg)
        many = Verifier(f2_table, "group", "A", sample_size=500,
                        repeats=30, seed=2).verify(seg)
        assert many.error_rate_stderr <= few.error_rate_stderr + 0.01

    def test_rejects_bad_parameters(self, f2_table):
        with pytest.raises(ValueError):
            Verifier(f2_table, "group", "A", sample_size=0)
        with pytest.raises(ValueError):
            Verifier(f2_table, "group", "A", repeats=0)
