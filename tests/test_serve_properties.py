"""Property-based tests of the compiled scorer against the scalar oracle.

The interesting inputs are the interval *endpoints themselves*: a point
exactly on ``low`` must be inside, a point exactly on ``high`` must be
inside iff ``closed_high``.  Drawing endpoints and query points from the
same small integer grid makes exact-boundary collisions the common case
rather than a measure-zero event.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.perf.reference import score_batch_scalar
from repro.serve.scorer import compile_scorer

GRID = st.integers(min_value=-5, max_value=5)


@st.composite
def intervals(draw):
    low = draw(GRID)
    high = draw(st.integers(min_value=low + 1, max_value=6))
    return Interval(float(low), float(high),
                    closed_high=draw(st.booleans()))


@st.composite
def segmentations(draw, max_rules=6):
    rules = tuple(
        ClusteredRule(
            "x", "y", draw(intervals()), draw(intervals()),
            "group", "A", support=0.1, confidence=0.9,
        )
        for _ in range(draw(st.integers(0, max_rules)))
    )
    return Segmentation(rules=rules, x_attribute="x", y_attribute="y",
                        rhs_attribute="group", rhs_value="A")


@st.composite
def query_points(draw, segmentation, max_points=40):
    """Points biased onto the segmentation's own interval endpoints."""
    endpoints = sorted(
        {
            float(bound)
            for rule in segmentation.rules
            for interval in (rule.x_interval, rule.y_interval)
            for bound in (interval.low, interval.high)
        }
    ) or [0.0]
    coordinate = st.one_of(
        st.sampled_from(endpoints),
        st.floats(min_value=-7, max_value=7, allow_nan=False),
    )
    n = draw(st.integers(1, max_points))
    xs = draw(st.lists(coordinate, min_size=n, max_size=n))
    ys = draw(st.lists(coordinate, min_size=n, max_size=n))
    return np.asarray(xs, dtype=np.float64), np.asarray(ys, dtype=np.float64)


@st.composite
def scoring_cases(draw):
    segmentation = draw(segmentations())
    xs, ys = draw(query_points(segmentation))
    return segmentation, xs, ys


@settings(max_examples=200, deadline=None)
@given(scoring_cases())
def test_score_batch_matches_per_rule_evaluation(case):
    """The compiled table agrees with naive first-matching-rule scoring,
    including points exactly on interval bounds under both closednesses."""
    segmentation, xs, ys = case
    fast = compile_scorer(segmentation).score_batch(xs, ys)
    assert np.array_equal(fast, score_batch_scalar(segmentation, xs, ys))


@settings(max_examples=100, deadline=None)
@given(scoring_cases())
def test_in_segment_matches_segmentation_covers(case):
    segmentation, xs, ys = case
    scorer = compile_scorer(segmentation)
    assert np.array_equal(
        scorer.in_segment(xs, ys), segmentation.covers(xs, ys)
    )


@settings(max_examples=100, deadline=None)
@given(scoring_cases())
def test_scalar_score_agrees_with_batch(case):
    """Single-tuple ``score`` is score_batch restricted to one point."""
    segmentation, xs, ys = case
    scorer = compile_scorer(segmentation)
    batch = scorer.score_batch(xs, ys)
    for x, y, expected in zip(xs, ys, batch):
        assert scorer.score(float(x), float(y)) == expected
