"""Unit tests for the Apriori miner, including the engine cross-check."""

import pytest

from repro.binning import bin_table
from repro.mining.apriori import (
    AprioriMiner,
    AssociationRule,
    table_transactions,
)
from repro.mining.engine import mine_binned_rules

BASKETS = [
    {"bread", "butter", "milk"},
    {"bread", "butter"},
    {"bread", "milk"},
    {"beer"},
    {"bread", "butter", "milk", "beer"},
]


class TestAssociationRule:
    def test_valid(self):
        rule = AssociationRule(
            frozenset(["a"]), frozenset(["b"]), 0.5, 0.8
        )
        assert "a => b" in str(rule)

    def test_rejects_empty_sides(self):
        with pytest.raises(ValueError):
            AssociationRule(frozenset(), frozenset(["b"]), 0.5, 0.8)

    def test_rejects_overlapping_sides(self):
        with pytest.raises(ValueError):
            AssociationRule(
                frozenset(["a"]), frozenset(["a", "b"]), 0.5, 0.8
            )


class TestMine:
    def test_confidence_computed_from_supports(self):
        miner = AprioriMiner.from_transactions(BASKETS)
        rules = miner.mine(min_support=0.4, min_confidence=0.7)
        by_sides = {
            (tuple(sorted(rule.lhs)), tuple(sorted(rule.rhs))): rule
            for rule in rules
        }
        bread_to_butter = by_sides[(("bread",), ("butter",))]
        assert bread_to_butter.support == pytest.approx(3 / 5)
        assert bread_to_butter.confidence == pytest.approx(3 / 4)

    def test_min_confidence_filters(self):
        miner = AprioriMiner.from_transactions(BASKETS)
        strict = miner.mine(min_support=0.2, min_confidence=0.99)
        assert all(rule.confidence >= 0.99 for rule in strict)

    def test_rules_satisfy_thresholds(self):
        miner = AprioriMiner.from_transactions(BASKETS)
        rules = miner.mine(min_support=0.4, min_confidence=0.6)
        assert rules
        for rule in rules:
            assert rule.support >= 0.4
            assert rule.confidence >= 0.6

    def test_mine_for_rhs(self):
        miner = AprioriMiner.from_transactions(BASKETS)
        rules = miner.mine_for_rhs("milk", 0.2, 0.5)
        assert rules
        assert all(rule.rhs == frozenset(["milk"]) for rule in rules)

    def test_rejects_bad_confidence(self):
        miner = AprioriMiner.from_transactions(BASKETS)
        with pytest.raises(ValueError):
            miner.mine(0.1, 1.2)


class TestTableTransactions:
    def test_items_are_attribute_value_pairs(self):
        transactions = table_transactions(
            {"x": [1, 2], "g": ["A", "B"]}
        )
        assert transactions[0] == frozenset([("x", 1), ("g", "A")])
        assert len(transactions) == 2

    def test_empty(self):
        assert table_transactions({}) == []


class TestEngineCrossCheck:
    """The paper says any existing miner could replace the specialised
    engine; on binned two-attribute data both must emit identical rules."""

    @pytest.mark.parametrize("min_support,min_confidence", [
        (0.002, 0.5), (0.01, 0.7), (0.005, 0.9),
    ])
    def test_identical_rule_sets(self, f2_clean_table, min_support,
                                 min_confidence):
        sample = f2_clean_table.head(3000)
        binner = bin_table(sample, "age", "salary", "group",
                           n_bins_x=8, n_bins_y=8)
        code = binner.rhs_encoding.code_of("A")

        engine_rules = mine_binned_rules(
            binner.bin_array, code, min_support, min_confidence
        )
        engine_cells = {(r.x_bin, r.y_bin) for r in engine_rules}

        x_bins, y_bins = binner.assign_points(sample)
        transactions = [
            frozenset([("X", int(i)), ("Y", int(j)), ("C", str(g))])
            for i, j, g in zip(
                x_bins, y_bins, sample.column("group")
            )
        ]
        miner = AprioriMiner.from_transactions(
            transactions, max_itemset_size=3
        )
        apriori_cells = set()
        for rule in miner.mine_for_rhs(
            ("C", "A"), min_support, min_confidence
        ):
            if len(rule.lhs) != 2:
                continue
            lhs = dict(rule.lhs)
            if set(lhs) == {"X", "Y"}:
                apriori_cells.add((lhs["X"], lhs["Y"]))

        assert engine_cells == apriori_cells

    def test_measures_agree(self, f2_clean_table):
        sample = f2_clean_table.head(2000)
        binner = bin_table(sample, "age", "salary", "group",
                           n_bins_x=5, n_bins_y=5)
        code = binner.rhs_encoding.code_of("A")
        engine_rules = {
            (r.x_bin, r.y_bin): r
            for r in mine_binned_rules(binner.bin_array, code, 0.01, 0.5)
        }

        x_bins, y_bins = binner.assign_points(sample)
        transactions = [
            frozenset([("X", int(i)), ("Y", int(j)), ("C", str(g))])
            for i, j, g in zip(x_bins, y_bins, sample.column("group"))
        ]
        miner = AprioriMiner.from_transactions(
            transactions, max_itemset_size=3
        )
        for rule in miner.mine_for_rhs(("C", "A"), 0.01, 0.5):
            if len(rule.lhs) != 2:
                continue
            lhs = dict(rule.lhs)
            if set(lhs) != {"X", "Y"}:
                continue
            engine_rule = engine_rules[(lhs["X"], lhs["Y"])]
            assert rule.support == pytest.approx(engine_rule.support)
            assert rule.confidence == pytest.approx(
                engine_rule.confidence
            )
