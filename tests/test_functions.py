"""Unit tests for the Agrawal et al. classification functions."""

import numpy as np
import pytest

from repro.data.functions import (
    FUNCTION_IDS,
    GROUP_A,
    GROUP_OTHER,
    Region,
    classification_function,
    label_table,
    true_regions,
)
from repro.data.schema import Table, quantitative


def make_table(**columns):
    """Table over whatever demographic attributes the test supplies."""
    specs = [quantitative(name) for name in columns]
    return Table.from_columns(specs, columns)


class TestFunctionRegistry:
    def test_all_ten_functions_exist(self):
        assert FUNCTION_IDS == tuple(range(1, 11))
        for fid in FUNCTION_IDS:
            assert callable(classification_function(fid))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            classification_function(0)
        with pytest.raises(ValueError):
            classification_function(11)


class TestFunction1:
    def test_age_bands(self):
        table = make_table(age=[25, 39.9, 40, 50, 59.9, 60, 75])
        got = classification_function(1)(table)
        assert list(got) == [True, True, False, False, False, True, True]


class TestFunction2:
    """The function every paper experiment uses (paper Figure 8)."""

    def test_young_band(self):
        table = make_table(
            age=[30, 30, 30, 30],
            salary=[49_999, 50_000, 100_000, 100_001],
        )
        got = classification_function(2)(table)
        assert list(got) == [False, True, True, False]

    def test_middle_band(self):
        table = make_table(
            age=[50, 50, 50, 50],
            salary=[74_999, 75_000, 125_000, 125_001],
        )
        got = classification_function(2)(table)
        assert list(got) == [False, True, True, False]

    def test_old_band(self):
        table = make_table(
            age=[70, 70, 70, 70],
            salary=[24_999, 25_000, 75_000, 75_001],
        )
        got = classification_function(2)(table)
        assert list(got) == [False, True, True, False]

    def test_band_boundaries_at_age(self):
        # age 40 belongs to the middle band, age 60 to the old band.
        table = make_table(age=[40, 60], salary=[80_000, 50_000])
        got = classification_function(2)(table)
        assert list(got) == [True, True]

    def test_paper_example_rules(self):
        """The four intro rules of paper Section 3.3 are all Group A."""
        table = make_table(
            age=[40, 41, 41, 40],
            salary=[42_350, 57_000, 48_750, 52_600],
        )
        # age 40/41 is the middle band: 75k <= salary <= 125k.  None of
        # these salaries qualify for the middle band... but the paper bins
        # them under Function-2-like synthetic rules; here we just check
        # determinism of the function itself.
        got = classification_function(2)(table)
        assert got.dtype == bool


class TestFunction3:
    def test_elevel_bands(self):
        table = make_table(age=[30, 30, 50, 70], elevel=[1, 2, 2, 2])
        got = classification_function(3)(table)
        assert list(got) == [True, False, True, True]


class TestFunction4:
    def test_elevel_selects_salary_band(self):
        # Young with elevel 0 -> 25k..75k; young with elevel 3 -> 50k..100k.
        table = make_table(
            age=[30, 30, 30, 30],
            elevel=[0, 0, 3, 3],
            salary=[30_000, 90_000, 30_000, 90_000],
        )
        got = classification_function(4)(table)
        assert list(got) == [True, False, False, True]


class TestFunction5:
    def test_salary_selects_loan_band(self):
        table = make_table(
            age=[30, 30],
            salary=[60_000, 150_000],
            loan=[150_000, 150_000],
        )
        got = classification_function(5)(table)
        # salary in band -> loan 100k..300k qualifies; salary out of band
        # -> loan must be 200k..400k, so 150k fails.
        assert list(got) == [True, False]


class TestFunction6:
    def test_total_income(self):
        table = make_table(
            age=[30, 30], salary=[40_000, 40_000],
            commission=[20_000, 70_000],
        )
        got = classification_function(6)(table)
        assert list(got) == [True, False]


class TestLinearFunctions:
    def test_function_7_sign(self):
        table = make_table(
            salary=[100_000, 30_000], commission=[0, 0],
            loan=[0, 500_000],
        )
        got = classification_function(7)(table)
        assert list(got) == [True, False]

    def test_function_8_elevel_penalty(self):
        table = make_table(
            salary=[40_000, 40_000], commission=[0, 0],
            elevel=[0, 4],
        )
        got = classification_function(8)(table)
        assert list(got) == [True, False]

    def test_function_9_combines_penalties(self):
        table = make_table(
            salary=[60_000, 60_000], commission=[0, 0],
            elevel=[0, 4], loan=[0, 500_000],
        )
        got = classification_function(9)(table)
        assert list(got) == [True, False]

    def test_function_10_equity_kicks_in_at_20_years(self):
        base = dict(
            salary=[20_000, 20_000], commission=[0, 0], elevel=[4, 4],
            hvalue=[500_000, 500_000],
        )
        table = make_table(**base, hyears=[10, 30])
        got = classification_function(10)(table)
        # Without equity disposable is negative; 30 years of a 500k house
        # adds 0.2 * 0.1 * 500k * 10 = 100k.
        assert list(got) == [False, True]


class TestLabelTable:
    def test_labels_partition(self):
        table = make_table(age=[30, 50], salary=[60_000, 60_000])
        labels = label_table(table, 2)
        assert set(labels) <= {GROUP_A, GROUP_OTHER}
        assert labels[0] == GROUP_A
        assert labels[1] == GROUP_OTHER

    def test_custom_label_names(self):
        table = make_table(age=[30], salary=[60_000])
        labels = label_table(table, 2, group_a="hot", group_other="cold")
        assert labels[0] == "hot"


class TestTrueRegions:
    def test_function_2_has_three_rectangles(self):
        regions = true_regions(2)
        assert len(regions) == 3
        assert all(r.x_attribute == "age" for r in regions)
        assert all(r.y_attribute == "salary" for r in regions)

    def test_regions_match_function_on_grid(self):
        """Region membership must agree with the function itself."""
        ages = np.linspace(20, 80, 61)
        salaries = np.linspace(20_000, 150_000, 66)
        grid_age, grid_salary = np.meshgrid(ages, salaries)
        table = make_table(
            age=grid_age.ravel(), salary=grid_salary.ravel()
        )
        by_function = classification_function(2)(table)
        regions = true_regions(2)
        by_regions = np.zeros(len(table), dtype=bool)
        for region in regions:
            by_regions |= region.contains(
                table.column("age"), table.column("salary")
            )
        assert (by_function == by_regions).all()

    def test_undefined_for_non_rectangular_functions(self):
        with pytest.raises(ValueError):
            true_regions(7)

    def test_region_area(self):
        region = Region("age", 20, 40, "salary", 50_000, 100_000)
        assert region.area == 20 * 50_000
