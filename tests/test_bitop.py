"""Unit tests for the BitOp algorithm (paper Section 3.3.1)."""

import pytest

from repro.core.bitop import (
    BitOpClusterer,
    brute_force_maximal_rectangles,
    component_bounding_boxes,
    enumerate_rectangles,
    largest_rectangle,
    runs_of_set_bits,
    single_cell_cover,
)
from repro.core.grid import RuleGrid
from repro.core.rules import GridRect


class TestRunsOfSetBits:
    def test_empty(self):
        assert runs_of_set_bits(0) == []

    def test_single_bit(self):
        assert runs_of_set_bits(0b1) == [(0, 1)]
        assert runs_of_set_bits(0b1000) == [(3, 1)]

    def test_single_run(self):
        assert runs_of_set_bits(0b1110) == [(1, 3)]

    def test_multiple_runs(self):
        assert runs_of_set_bits(0b1011011) == [(0, 2), (3, 2), (6, 1)]

    def test_all_ones(self):
        assert runs_of_set_bits((1 << 10) - 1) == [(0, 10)]

    def test_alternating(self):
        assert runs_of_set_bits(0b10101) == [(0, 1), (2, 1), (4, 1)]


class TestPaperExample:
    """The worked bitmap of paper Section 3.3.1:

        row3  1 0 0
        row2  1 1 0
        row1  0 1 1

    (rows listed top-down in the paper; our row index 0 is row 1).
    The paper's pass over it finds a 2x1 cluster in row 1 and clusters
    extending two rows in the shared column.
    """

    ROWS = [0b110, 0b011, 0b001]  # bit j = column j: row1=cols{1,2}...

    def test_enumeration_contains_paper_clusters(self):
        rects = enumerate_rectangles(self.ROWS)
        # Row 0 alone: the run cols 1..2 (the paper's "2-by-1" cluster).
        assert GridRect(0, 0, 1, 2) in rects
        # Column 1 extends rows 0..1 (the paper's dashed "1-by-2").
        assert GridRect(0, 1, 1, 1) in rects
        # Column 0 extends rows 1..2.
        assert GridRect(1, 2, 0, 0) in rects

    def test_no_rectangle_contains_an_unset_cell(self):
        grid = RuleGrid.from_row_bitmaps(self.ROWS, 3)
        for rect in enumerate_rectangles(self.ROWS):
            assert grid.covers(rect)


class TestEnumerateRectangles:
    def test_empty_bitmap(self):
        assert enumerate_rectangles([0, 0]) == []

    def test_full_bitmap_yields_whole_grid(self):
        rows = [0b111, 0b111]
        rects = enumerate_rectangles(rows)
        assert GridRect(0, 1, 0, 2) in rects

    def test_single_cell(self):
        assert enumerate_rectangles([0b1]) == [GridRect(0, 0, 0, 0)]

    def test_l_shape(self):
        # ##.
        # #..
        rows = [0b011, 0b001]
        rects = set(enumerate_rectangles(rows))
        assert GridRect(0, 0, 0, 1) in rects  # top bar
        assert GridRect(0, 1, 0, 0) in rects  # left column
        grid = RuleGrid.from_row_bitmaps(rows, 2)
        assert all(grid.covers(rect) for rect in rects)

    def test_all_rectangles_valid(self):
        rows = [0b1101, 0b1111, 0b0111, 0b0110]
        grid = RuleGrid.from_row_bitmaps(rows, 4)
        for rect in enumerate_rectangles(rows):
            assert grid.covers(rect)

    def test_maximal_height_rectangles_found(self):
        """Every brute-force maximal rectangle appears in the
        enumeration (the enumeration may contain more, non-maximal-width
        candidates from later start rows)."""
        rows = [0b0110, 0b1111, 0b1111, 0b0011]
        grid = RuleGrid.from_row_bitmaps(rows, 4)
        enumerated = set(enumerate_rectangles(rows))
        for rect in brute_force_maximal_rectangles(grid):
            assert rect in enumerated


class TestLargestRectangle:
    def test_none_on_empty(self):
        assert largest_rectangle([0, 0]) is None

    def test_picks_largest_area(self):
        # A 2-row x 3-col block (area 6) beats a 1-row x 4-col bar.
        rows = [0b0001111, 0b1110000, 0b1110000]
        got = largest_rectangle(rows)
        assert got is not None
        assert got.area == 6
        assert got == GridRect(1, 2, 4, 6)

    def test_deterministic_tiebreak(self):
        rows = [0b0101, 0b0101]
        first = largest_rectangle(rows)
        second = largest_rectangle(rows)
        assert first == second


class TestBitOpClusterer:
    def test_exact_cover_of_disjoint_blocks(self):
        grid = RuleGrid.empty(8, 8)
        blocks = [GridRect(0, 2, 0, 2), GridRect(5, 7, 5, 7)]
        for block in blocks:
            grid.set_rect(block)
        clusters = BitOpClusterer().cluster(grid)
        assert sorted(clusters) == sorted(blocks)

    def test_cover_is_complete(self):
        grid = RuleGrid.empty(6, 6)
        grid.set_rect(GridRect(0, 3, 0, 1))
        grid.set_rect(GridRect(2, 5, 3, 5))
        grid.cells[0, 5] = True
        clusters = BitOpClusterer().cluster(grid)
        assert grid.fraction_covered_by(clusters) == 1.0

    def test_clusters_only_cover_set_cells(self):
        grid = RuleGrid.empty(5, 5)
        grid.set_rect(GridRect(0, 1, 0, 4))
        grid.set_rect(GridRect(3, 4, 0, 4))
        for rect in BitOpClusterer().cluster(grid):
            assert grid.covers(rect)

    def test_input_grid_unmodified(self):
        grid = RuleGrid.empty(4, 4)
        grid.set_rect(GridRect(0, 3, 0, 3))
        BitOpClusterer().cluster(grid)
        assert grid.n_set == 16

    def test_min_cells_terminates_early(self):
        grid = RuleGrid.empty(10, 10)
        grid.set_rect(GridRect(0, 4, 0, 4))  # 25 cells
        grid.cells[9, 9] = True  # isolated outlier
        clusters = BitOpClusterer(min_cells=2).cluster(grid)
        assert GridRect(0, 4, 0, 4) in clusters
        assert GridRect(9, 9, 9, 9) not in clusters

    def test_max_clusters_bound(self):
        grid = RuleGrid.empty(6, 1)
        for i in range(0, 6, 2):
            grid.cells[i, 0] = True
        clusters = BitOpClusterer(max_clusters=2).cluster(grid)
        assert len(clusters) == 2

    def test_empty_grid(self):
        assert BitOpClusterer().cluster(RuleGrid.empty(3, 3)) == []

    def test_rejects_bad_min_cells(self):
        with pytest.raises(ValueError):
            BitOpClusterer(min_cells=0).cluster(RuleGrid.empty(2, 2))

    def test_greedy_takes_big_rectangle_first(self):
        grid = RuleGrid.empty(8, 8)
        grid.set_rect(GridRect(0, 5, 0, 5))  # 36 cells
        grid.cells[7, 7] = True
        clusters = BitOpClusterer().cluster(grid)
        assert clusters[0] == GridRect(0, 5, 0, 5)


class TestCoverBaselines:
    def test_single_cell_cover(self):
        grid = RuleGrid.from_pairs([(0, 0), (2, 3)], 4, 4)
        cover = single_cell_cover(grid)
        assert sorted(cover) == [
            GridRect(0, 0, 0, 0), GridRect(2, 2, 3, 3)
        ]

    def test_component_bounding_boxes_merges_connected(self):
        grid = RuleGrid.empty(6, 6)
        grid.set_rect(GridRect(0, 1, 0, 1))
        grid.cells[2, 1] = True  # touches the block (4-connected)
        boxes = component_bounding_boxes(grid)
        assert boxes == [GridRect(0, 2, 0, 1)]

    def test_component_bounding_boxes_separates_disjoint(self):
        grid = RuleGrid.empty(6, 6)
        grid.set_rect(GridRect(0, 0, 0, 0))
        grid.set_rect(GridRect(4, 5, 4, 5))
        boxes = component_bounding_boxes(grid)
        assert len(boxes) == 2

    def test_component_boxes_can_overcover(self):
        """A concave component's box contains unset cells — the false
        positives BitOp avoids (the ablation's point)."""
        grid = RuleGrid.empty(3, 3)
        grid.cells[0, 0] = grid.cells[0, 1] = True
        grid.cells[1, 1] = True
        grid.cells[2, 1] = grid.cells[2, 2] = True
        boxes = component_bounding_boxes(grid)
        assert len(boxes) == 1
        assert not grid.covers(boxes[0])


class TestParallelEnumeration:
    """Section 5: "parallel implementations of the algorithm would be
    straightforward" — the parallel path must match the serial one
    exactly."""

    def make_rows(self, seed=5, n_rows=24, n_cols=24):
        import numpy as np
        rng = np.random.default_rng(seed)
        grid = RuleGrid(rng.random((n_rows, n_cols)) < 0.4)
        return grid.row_bitmaps()

    def test_matches_serial(self):
        from repro.core.bitop import enumerate_rectangles_parallel
        rows = self.make_rows()
        serial = enumerate_rectangles(rows)
        parallel = enumerate_rectangles_parallel(rows, workers=3)
        assert parallel == serial

    def test_single_worker_is_serial_path(self):
        from repro.core.bitop import enumerate_rectangles_parallel
        rows = self.make_rows(seed=6)
        assert enumerate_rectangles_parallel(rows, workers=1) == (
            enumerate_rectangles(rows)
        )

    def test_small_inputs_skip_the_pool(self):
        from repro.core.bitop import enumerate_rectangles_parallel
        rows = [0b11, 0b01]
        assert enumerate_rectangles_parallel(rows, workers=4) == (
            enumerate_rectangles(rows)
        )

    def test_rejects_bad_worker_count(self):
        import pytest
        from repro.core.bitop import enumerate_rectangles_parallel
        with pytest.raises(ValueError):
            enumerate_rectangles_parallel([0b1], workers=0)


class TestBruteForceOracle:
    def test_maximal_rectangles_small_grid(self):
        grid = RuleGrid.empty(3, 3)
        grid.set_rect(GridRect(0, 1, 0, 1))
        maximal = brute_force_maximal_rectangles(grid)
        assert maximal == [GridRect(0, 1, 0, 1)]

    def test_cross_shape(self):
        grid = RuleGrid.empty(3, 3)
        grid.set_rect(GridRect(1, 1, 0, 2))
        grid.set_rect(GridRect(0, 2, 1, 1))
        maximal = set(brute_force_maximal_rectangles(grid))
        assert maximal == {GridRect(1, 1, 0, 2), GridRect(0, 2, 1, 1)}
