"""Unit tests for the attribute/table model."""

import numpy as np
import pytest

from repro.data.schema import (
    AttributeSpec,
    SchemaError,
    Table,
    categorical,
    quantitative,
)


class TestAttributeSpec:
    def test_quantitative_constructor(self):
        spec = quantitative("age", 20, 80)
        assert spec.is_quantitative
        assert not spec.is_categorical
        assert spec.quantitative_range() == (20.0, 80.0)

    def test_quantitative_without_domain(self):
        spec = quantitative("age")
        assert spec.domain is None
        assert spec.quantitative_range() is None

    def test_categorical_constructor(self):
        spec = categorical("group", ("A", "B"))
        assert spec.is_categorical
        assert spec.domain == ("A", "B")

    def test_rejects_unknown_kind(self):
        with pytest.raises(SchemaError):
            AttributeSpec("x", "ordinal")

    def test_rejects_empty_quantitative_domain(self):
        with pytest.raises(SchemaError):
            quantitative("x", 5, 5)

    def test_rejects_inverted_domain(self):
        with pytest.raises(SchemaError):
            quantitative("x", 10, 1)

    def test_rejects_bad_domain_arity(self):
        with pytest.raises(SchemaError):
            AttributeSpec("x", "quantitative", (1, 2, 3))

    def test_rejects_empty_categorical_domain(self):
        with pytest.raises(SchemaError):
            AttributeSpec("x", "categorical", ())


class TestTableConstruction:
    def test_from_columns(self):
        table = Table.from_columns(
            [quantitative("a"), categorical("b")],
            {"a": [1, 2, 3], "b": ["x", "y", "x"]},
        )
        assert len(table) == 3
        assert table.attribute_names == ["a", "b"]

    def test_quantitative_columns_are_float64(self):
        table = Table.from_columns(
            [quantitative("a")], {"a": [1, 2, 3]}
        )
        assert table.column("a").dtype == np.float64

    def test_categorical_columns_are_object(self):
        table = Table.from_columns(
            [categorical("b")], {"b": ["x", "y"]}
        )
        assert table.column("b").dtype == object

    def test_from_rows(self):
        table = Table.from_rows(
            [quantitative("a"), categorical("b")],
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}],
        )
        assert len(table) == 2
        assert list(table.column("a")) == [1.0, 2.0]

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns([quantitative("a")], {})

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(
                [quantitative("a"), quantitative("a")], {"a": [1]}
            )

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(
                [quantitative("a"), quantitative("b")],
                {"a": [1, 2], "b": [1]},
            )

    def test_empty_table(self):
        table = Table.from_columns([quantitative("a")], {"a": []})
        assert len(table) == 0


class TestTableAccess:
    def test_unknown_attribute_raises(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.column("nope")

    def test_observed_range_prefers_declared_domain(self, tiny_table):
        # Data spans 25..75 but the declared domain is 20..80.
        assert tiny_table.observed_range("age") == (20.0, 80.0)

    def test_observed_range_falls_back_to_data(self):
        table = Table.from_columns(
            [quantitative("a")], {"a": [3, 1, 2]}
        )
        assert table.observed_range("a") == (1.0, 3.0)

    def test_observed_range_rejects_categorical(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.observed_range("group")

    def test_observed_range_rejects_empty(self):
        table = Table.from_columns([quantitative("a")], {"a": []})
        with pytest.raises(SchemaError):
            table.observed_range("a")

    def test_categorical_values_declared(self, tiny_table):
        assert tiny_table.categorical_values("group") == ("A", "other")

    def test_categorical_values_observed(self):
        table = Table.from_columns(
            [categorical("b")], {"b": ["y", "x", "y"]}
        )
        assert table.categorical_values("b") == ("x", "y")

    def test_categorical_values_rejects_quantitative(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.categorical_values("age")


class TestTableRowOperations:
    def test_take(self, tiny_table):
        sub = tiny_table.take([0, 2, 0])
        assert len(sub) == 3
        assert list(sub.column("age")) == [25.0, 35.0, 25.0]

    def test_where(self, tiny_table):
        mask = tiny_table.column("age") < 40
        sub = tiny_table.where(mask)
        assert len(sub) == 3
        assert all(sub.column("age") < 40)

    def test_where_shape_mismatch(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.where(np.array([True, False]))

    def test_head(self, tiny_table):
        assert len(tiny_table.head(2)) == 2
        assert len(tiny_table.head(100)) == len(tiny_table)

    def test_sample_without_replacement(self, tiny_table, fresh_rng):
        sample = tiny_table.sample(6, fresh_rng)
        assert sorted(sample.column("age")) == sorted(
            tiny_table.column("age")
        )

    def test_sample_too_large(self, tiny_table, fresh_rng):
        with pytest.raises(SchemaError):
            tiny_table.sample(7, fresh_rng)

    def test_with_column_adds(self, tiny_table):
        values = [1.0] * len(tiny_table)
        bigger = tiny_table.with_column(quantitative("ones"), values)
        assert "ones" in bigger.attribute_names
        assert "ones" not in tiny_table.attribute_names

    def test_with_column_replaces(self, tiny_table):
        replaced = tiny_table.with_column(
            quantitative("age", 0, 200), [0.0] * len(tiny_table)
        )
        assert replaced.observed_range("age") == (0.0, 200.0)
        assert (replaced.column("age") == 0).all()

    def test_with_column_length_mismatch(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.with_column(quantitative("bad"), [1.0])

    def test_select(self, tiny_table):
        sub = tiny_table.select(["salary", "age"])
        assert sub.attribute_names == ["salary", "age"]

    def test_concat(self, tiny_table):
        doubled = tiny_table.concat(tiny_table)
        assert len(doubled) == 2 * len(tiny_table)

    def test_concat_schema_mismatch(self, tiny_table):
        other = tiny_table.select(["age"])
        with pytest.raises(SchemaError):
            tiny_table.concat(other)


class TestStreaming:
    def test_iter_chunks_covers_all_rows(self, tiny_table):
        chunks = list(tiny_table.iter_chunks(4))
        assert [len(chunk) for chunk in chunks] == [4, 2]
        recombined = chunks[0].concat(chunks[1])
        assert list(recombined.column("age")) == list(
            tiny_table.column("age")
        )

    def test_iter_chunks_rejects_nonpositive(self, tiny_table):
        with pytest.raises(SchemaError):
            list(tiny_table.iter_chunks(0))

    def test_iter_rows(self, tiny_table):
        rows = list(tiny_table.iter_rows())
        assert len(rows) == len(tiny_table)
        assert rows[0]["group"] == "A"
        assert rows[0]["age"] == 25.0
