"""Unit tests for the threshold lattice and the heuristic optimizer."""

import pytest

from repro.core.clusterer import GridClusterer
from repro.core.mdl import MDLWeights
from repro.core.optimizer import (
    HeuristicOptimizer,
    OptimizerConfig,
    ThresholdLattice,
    _spread,
)
from repro.core.verifier import Verifier


@pytest.fixture()
def lattice(f2_binner):
    code = f2_binner.rhs_encoding.code_of("A")
    return ThresholdLattice(f2_binner.bin_array, code)


class TestThresholdLattice:
    def test_support_counts_ascending_and_occurring(self, lattice,
                                                    f2_binner):
        counts = lattice.support_counts
        assert list(counts) == sorted(set(counts))
        grid = f2_binner.bin_array.count_grid(0)
        occurring = set(int(c) for c in grid.flatten() if c > 0)
        assert set(counts) == occurring

    def test_support_fractions(self, lattice):
        fractions = lattice.support_fractions()
        assert len(fractions) == len(lattice.support_counts)
        assert fractions[0] == pytest.approx(
            lattice.support_counts[0] / lattice.n_total
        )

    def test_confidences_shrink_with_support(self, lattice):
        low = lattice.confidences_at(1)
        high = lattice.confidences_at(lattice.support_counts[-1])
        assert len(high) <= len(low)
        assert set(high) <= set(low)

    def test_coarsen_supports_keeps_extremes(self, lattice):
        coarse = lattice.coarsen_supports(5)
        fractions = lattice.support_fractions()
        assert len(coarse) <= 5
        assert coarse[0] == fractions[0]
        assert coarse[-1] == fractions[-1]

    def test_coarsen_confidences_bounded(self, lattice):
        coarse = lattice.coarsen_confidences(1, 4)
        assert len(coarse) <= 4


class TestSpread:
    def test_short_lists_unchanged(self):
        assert _spread([1.0, 2.0], 5) == [1.0, 2.0]

    def test_spread_keeps_endpoints(self):
        values = [float(v) for v in range(100)]
        got = _spread(values, 7)
        assert len(got) == 7
        assert got[0] == 0.0 and got[-1] == 99.0

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            _spread([1.0], 0)


class TestOptimizerConfig:
    def test_defaults_valid(self):
        OptimizerConfig()

    @pytest.mark.parametrize("kwargs", [
        {"max_support_levels": 0},
        {"max_confidence_levels": 0},
        {"patience": 0},
        {"epsilon": -1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            OptimizerConfig(**kwargs)


class TestHeuristicOptimizer:
    def make_optimizer(self, table, **config_kwargs):
        config = OptimizerConfig(
            max_support_levels=6, max_confidence_levels=4,
            **config_kwargs,
        )
        return HeuristicOptimizer(
            clusterer=GridClusterer(),
            verifier=Verifier(table, "group", "A", sample_size=1000,
                              repeats=3),
            weights=MDLWeights(),
            config=config,
        )

    def test_search_returns_best_trial(self, f2_binner, f2_clean_table):
        code = f2_binner.rhs_encoding.code_of("A")
        optimizer = self.make_optimizer(f2_clean_table)
        result = optimizer.search(f2_binner.bin_array, code)
        assert result.best.mdl_cost == min(
            trial.mdl_cost for trial in result.history
        )
        assert result.n_trials == len(result.history)
        assert result.best.n_clusters == len(result.segmentation)

    def test_clean_data_yields_three_clusters(self, f2_binner,
                                              f2_clean_table):
        code = f2_binner.rhs_encoding.code_of("A")
        optimizer = self.make_optimizer(f2_clean_table)
        result = optimizer.search(f2_binner.bin_array, code)
        assert result.best.n_clusters == 3

    def test_search_starts_at_lowest_support(self, f2_binner,
                                             f2_clean_table):
        code = f2_binner.rhs_encoding.code_of("A")
        optimizer = self.make_optimizer(f2_clean_table)
        result = optimizer.search(f2_binner.bin_array, code)
        lattice = ThresholdLattice(f2_binner.bin_array, code)
        assert result.history[0].min_support == pytest.approx(
            lattice.support_fractions()[0]
        )

    def test_supports_visited_in_ascending_order(self, f2_binner,
                                                 f2_clean_table):
        code = f2_binner.rhs_encoding.code_of("A")
        optimizer = self.make_optimizer(f2_clean_table)
        result = optimizer.search(f2_binner.bin_array, code)
        supports = [trial.min_support for trial in result.history]
        assert supports == sorted(supports)

    def test_time_budget_stops_search(self, f2_binner, f2_clean_table):
        code = f2_binner.rhs_encoding.code_of("A")
        optimizer = self.make_optimizer(
            f2_clean_table, time_budget_seconds=0.0
        )
        # A zero budget still runs the first support level's trials? No —
        # the deadline check precedes each level, so at least one level
        # must be allowed; with budget 0 the search stops immediately and
        # must raise because no trial ran.
        with pytest.raises(ValueError):
            optimizer.search(f2_binner.bin_array, code)

    def test_on_trial_hook_sees_every_trial(self, f2_binner,
                                            f2_clean_table):
        code = f2_binner.rhs_encoding.code_of("A")
        seen = []
        optimizer = HeuristicOptimizer(
            clusterer=GridClusterer(),
            verifier=Verifier(f2_clean_table, "group", "A",
                              sample_size=400, repeats=2),
            config=OptimizerConfig(max_support_levels=4,
                                   max_confidence_levels=3),
            on_trial=seen.append,
        )
        result = optimizer.search(f2_binner.bin_array, code)
        assert seen == list(result.history)

    def test_missing_target_rejected(self, f2_binner):
        optimizer = HeuristicOptimizer(
            clusterer=GridClusterer(),
            verifier=None,  # never reached
        )
        bin_array = f2_binner.bin_array
        # Build a lattice query for a code whose counts are all zero by
        # constructing an empty array of the same shape.
        from repro.binning.bin_array import BinArray
        empty = BinArray(
            bin_array.x_layout, bin_array.y_layout,
            bin_array.rhs_encoding,
        )
        with pytest.raises(ValueError, match="does not occur"):
            optimizer.search(empty, 0)
