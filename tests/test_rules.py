"""Unit tests for the rule data model."""

import numpy as np
import pytest

from repro.core.rules import BinnedRule, ClusteredRule, GridRect, Interval


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(1.0, 2.0)
        assert list(interval.contains([0.9, 1.0, 1.9, 2.0])) == [
            False, True, True, False
        ]

    def test_contains_closed_high(self):
        interval = Interval(1.0, 2.0, closed_high=True)
        assert interval.contains([2.0])[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(2.0, 2.0)

    def test_width(self):
        assert Interval(1.0, 3.5).width == 2.5

    def test_overlaps_basic(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_overlaps_shared_endpoint_half_open(self):
        assert not Interval(0, 1).overlaps(Interval(1, 2))
        assert Interval(0, 1, closed_high=True).overlaps(Interval(1, 2))

    def test_intersect(self):
        got = Interval(0, 5).intersect(Interval(3, 8))
        assert got == Interval(3, 5)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_intersect_preserves_closure(self):
        closed = Interval(0, 5, closed_high=True)
        got = closed.intersect(Interval(3, 8))
        assert got is not None and got.closed_high

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(3, 4)) == Interval(0, 4)

    def test_hull_closure_follows_upper_interval(self):
        upper_closed = Interval(3, 4, closed_high=True)
        assert Interval(0, 1).hull(upper_closed).closed_high

    def test_describe(self):
        assert Interval(40, 42).describe("age") == "40 <= age < 42"
        closed = Interval(40, 42, closed_high=True)
        assert closed.describe("age") == "40 <= age <= 42"


class TestBinnedRule:
    def test_valid_rule(self):
        rule = BinnedRule(2, 3, "A", support=0.1, confidence=0.9)
        assert rule.x_bin == 2

    def test_rejects_negative_bins(self):
        with pytest.raises(ValueError):
            BinnedRule(-1, 0, "A", 0.1, 0.5)

    @pytest.mark.parametrize("support,confidence",
                             [(1.5, 0.5), (0.5, -0.1)])
    def test_rejects_bad_measures(self, support, confidence):
        with pytest.raises(ValueError):
            BinnedRule(0, 0, "A", support, confidence)


class TestGridRect:
    def test_geometry(self):
        rect = GridRect(1, 3, 2, 4)
        assert rect.width == 3
        assert rect.height == 3
        assert rect.area == 9

    def test_single_cell(self):
        rect = GridRect(2, 2, 5, 5)
        assert rect.area == 1

    def test_rejects_inverted_ranges(self):
        with pytest.raises(ValueError):
            GridRect(3, 1, 0, 0)
        with pytest.raises(ValueError):
            GridRect(0, 0, 3, 1)

    def test_contains_cell(self):
        rect = GridRect(1, 2, 1, 2)
        assert rect.contains_cell(1, 1)
        assert rect.contains_cell(2, 2)
        assert not rect.contains_cell(0, 1)
        assert not rect.contains_cell(1, 3)

    def test_cells_enumeration(self):
        rect = GridRect(0, 1, 0, 1)
        assert sorted(rect.cells()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_overlaps(self):
        assert GridRect(0, 2, 0, 2).overlaps(GridRect(2, 4, 2, 4))
        assert not GridRect(0, 1, 0, 1).overlaps(GridRect(2, 3, 0, 1))

    def test_intersect(self):
        got = GridRect(0, 3, 0, 3).intersect(GridRect(2, 5, 1, 2))
        assert got == GridRect(2, 3, 1, 2)
        assert GridRect(0, 0, 0, 0).intersect(GridRect(1, 1, 1, 1)) is None

    def test_union_bounding(self):
        got = GridRect(0, 1, 0, 1).union_bounding(GridRect(3, 4, 2, 5))
        assert got == GridRect(0, 4, 0, 5)


class TestClusteredRule:
    def make_rule(self):
        return ClusteredRule(
            x_attribute="age",
            y_attribute="salary",
            x_interval=Interval(40, 42),
            y_interval=Interval(40_000, 60_000),
            rhs_attribute="group",
            rhs_value="A",
            support=0.1,
            confidence=0.92,
        )

    def test_matches(self):
        rule = self.make_rule()
        got = rule.matches([41, 41, 39], [50_000, 70_000, 50_000])
        assert list(got) == [True, False, False]

    def test_str_renders_like_paper(self):
        text = str(self.make_rule())
        assert "40 <= age < 42" in text
        assert "40000 <= salary < 60000" in text
        assert "group = A" in text

    def test_rejects_bad_measures(self):
        with pytest.raises(ValueError):
            ClusteredRule(
                "age", "salary", Interval(0, 1), Interval(0, 1),
                "group", "A", support=2.0, confidence=0.5,
            )
