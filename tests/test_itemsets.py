"""Unit tests for the Apriori itemset machinery."""

import pytest

from repro.mining.itemsets import (
    ItemsetCounter,
    frequent_itemsets,
    generate_candidates,
)

BASKETS = [
    {"bread", "butter", "milk"},
    {"bread", "butter"},
    {"bread", "milk"},
    {"beer"},
    {"bread", "butter", "milk", "beer"},
]


@pytest.fixture()
def counter():
    return ItemsetCounter.from_transactions(BASKETS)


class TestItemsetCounter:
    def test_n_transactions(self, counter):
        assert counter.n_transactions == 5

    def test_count_singletons(self, counter):
        counts = counter.count([frozenset(["bread"]), frozenset(["beer"])])
        assert counts[frozenset(["bread"])] == 4
        assert counts[frozenset(["beer"])] == 2

    def test_count_pairs(self, counter):
        pair = frozenset(["bread", "butter"])
        assert counter.count([pair])[pair] == 3

    def test_count_empty_candidates(self, counter):
        assert counter.count([]) == {}

    def test_support(self, counter):
        assert counter.support(frozenset(["bread", "milk"])) == 3 / 5
        assert counter.support(frozenset(["nope"])) == 0.0

    def test_support_empty_counter(self):
        empty = ItemsetCounter.from_transactions([])
        assert empty.support(frozenset(["x"])) == 0.0


class TestGenerateCandidates:
    def test_joins_shared_prefix(self):
        frequent = [frozenset("ab"), frozenset("ac"), frozenset("bc")]
        candidates = generate_candidates(frequent)
        assert candidates == [frozenset("abc")]

    def test_prunes_infrequent_subsets(self):
        # "bc" is missing, so "abc" must be pruned.
        frequent = [frozenset("ab"), frozenset("ac")]
        assert generate_candidates(frequent) == []

    def test_empty_input(self):
        assert generate_candidates([]) == []

    def test_singletons_join_to_pairs(self):
        frequent = [frozenset("a"), frozenset("b"), frozenset("c")]
        candidates = set(generate_candidates(frequent))
        assert candidates == {
            frozenset("ab"), frozenset("ac"), frozenset("bc")
        }

    def test_mixed_type_items(self):
        """(attribute, value) items with mixed value types must not hit
        Python's cross-type comparison error."""
        frequent = [
            frozenset([("X", 1)]), frozenset([("X", "a")]),
            frozenset([("Y", 2)]),
        ]
        candidates = generate_candidates(frequent)
        assert len(candidates) == 3


class TestFrequentItemsets:
    def test_known_supports(self, counter):
        result = frequent_itemsets(counter, min_support=0.4)
        assert result[frozenset(["bread"])] == 4 / 5
        assert result[frozenset(["bread", "butter"])] == 3 / 5
        assert result[frozenset(["bread", "butter", "milk"])] == 2 / 5
        assert frozenset(["beer", "bread"]) not in result

    def test_downward_closure(self, counter):
        """Every subset of a frequent itemset is frequent."""
        result = frequent_itemsets(counter, min_support=0.4)
        for itemset in result:
            for item in itemset:
                if len(itemset) > 1:
                    assert (itemset - {item}) in result

    def test_max_size_caps_search(self, counter):
        result = frequent_itemsets(counter, min_support=0.2, max_size=2)
        assert all(len(itemset) <= 2 for itemset in result)

    def test_high_support_empty(self, counter):
        assert frequent_itemsets(counter, min_support=0.99) == {}

    def test_zero_support_includes_everything_seen(self, counter):
        result = frequent_itemsets(counter, min_support=0.0, max_size=1)
        assert frozenset(["beer"]) in result

    def test_empty_transactions(self):
        counter = ItemsetCounter.from_transactions([])
        assert frequent_itemsets(counter, 0.1) == {}

    def test_rejects_bad_support(self, counter):
        with pytest.raises(ValueError):
            frequent_itemsets(counter, min_support=1.5)
