"""Unit tests for MDL scoring (paper Section 3.6)."""

import math

import pytest

from repro.core.mdl import MDLWeights, mdl_cost


class TestMdlCost:
    def test_basic_value(self):
        # 3 clusters, 7 errors: log2(4) + log2(8) = 2 + 3.
        assert mdl_cost(3, 7) == pytest.approx(5.0)

    def test_empty_segmentation_is_infinite(self):
        assert mdl_cost(0, 0) == math.inf
        assert mdl_cost(0, 100) == math.inf

    def test_zero_errors_finite(self):
        assert mdl_cost(1, 0) == pytest.approx(1.0)  # log2(2)

    def test_monotone_in_clusters(self):
        assert mdl_cost(5, 10) > mdl_cost(3, 10)

    def test_monotone_in_errors(self):
        assert mdl_cost(3, 20) > mdl_cost(3, 10)

    def test_logarithmic_separation(self):
        """Doubling clusters costs ~1 extra bit, not double the cost."""
        few = mdl_cost(4, 0)
        many = mdl_cost(8, 0)
        assert many - few < few

    def test_cluster_weight_bias(self):
        """Large w_c penalises many-cluster segmentations harder."""
        few = mdl_cost(3, 50, cluster_weight=10.0)
        many = mdl_cost(30, 10, cluster_weight=10.0)
        assert few < many

    def test_error_weight_bias(self):
        low_error = mdl_cost(30, 10, error_weight=10.0)
        high_error = mdl_cost(3, 50, error_weight=10.0)
        assert low_error < high_error

    def test_fractional_errors_accepted(self):
        """The verifier averages over repeats, so errors may be
        fractional."""
        assert mdl_cost(3, 7.5) > mdl_cost(3, 7.0)

    @pytest.mark.parametrize("clusters,errors", [(-1, 0), (1, -2)])
    def test_rejects_negative_inputs(self, clusters, errors):
        with pytest.raises(ValueError):
            mdl_cost(clusters, errors)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            mdl_cost(1, 1, cluster_weight=-1)


class TestMDLWeights:
    def test_default_is_unbiased(self):
        weights = MDLWeights()
        assert weights.cluster_weight == 1.0
        assert weights.error_weight == 1.0

    def test_cost_delegates(self):
        weights = MDLWeights(cluster_weight=2.0, error_weight=3.0)
        assert weights.cost(3, 7) == pytest.approx(
            2.0 * math.log2(4) + 3.0 * math.log2(8)
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MDLWeights(cluster_weight=-0.5)
