"""Shared fixtures for the test suite.

Expensive artefacts (generated data sets, fitted binners) are session
scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.binning import bin_table
from repro.data.schema import Table, categorical, quantitative


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def fresh_rng() -> np.random.Generator:
    """A per-test generator for tests that consume randomness."""
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def tiny_table() -> Table:
    """Six rows, two quantitative attributes, two groups."""
    specs = [
        quantitative("age", 20, 80),
        quantitative("salary", 20_000, 150_000),
        categorical("group", ("A", "other")),
    ]
    return Table.from_columns(specs, {
        "age": [25, 30, 35, 55, 65, 75],
        "salary": [60_000, 70_000, 80_000, 90_000, 40_000, 50_000],
        "group": ["A", "A", "other", "A", "other", "A"],
    })


@pytest.fixture(scope="session")
def f2_table() -> Table:
    """Function 2 data: 20k tuples, 5% perturbation, no outliers."""
    config = repro.SyntheticConfig(
        n_tuples=20_000, function_id=2, perturbation=0.05, seed=42
    )
    return repro.generate_synthetic(config)


@pytest.fixture(scope="session")
def f2_clean_table() -> Table:
    """Function 2 data with no perturbation or outliers (10k tuples)."""
    config = repro.SyntheticConfig(
        n_tuples=10_000, function_id=2, perturbation=0.0, seed=7
    )
    return repro.generate_synthetic(config)


@pytest.fixture(scope="session")
def f2_outlier_table() -> Table:
    """Function 2 data with 10% outliers (20k tuples)."""
    config = repro.SyntheticConfig(
        n_tuples=20_000, function_id=2, perturbation=0.05,
        outlier_fraction=0.10, seed=11,
    )
    return repro.generate_synthetic(config)


@pytest.fixture(scope="session")
def f2_binner(f2_clean_table):
    """A fitted 30x30 binner over the clean Function 2 data."""
    return bin_table(
        f2_clean_table, "age", "salary", "group",
        n_bins_x=30, n_bins_y=30,
    )
