"""Tests for the streaming subsystem: sources, windows, refitter, CLI.

The load-bearing property throughout is the streaming invariant: after
*any* sequence of ingests and expiries, the windowed BinArray is
bit-identical (exact ``==`` on every counter) to a BinArray accumulated
from scratch over exactly the window's surviving tuples.
"""

import json

import numpy as np
import pytest

import repro
from repro.binning.bin_array import BinArray
from repro.binning.binner import Binner
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import equi_width_layout
from repro.cli import main
from repro.data.io import write_csv
from repro.data.schema import Table, categorical, quantitative
from repro.serve.registry import ModelRegistry
from repro.stream import (
    CSVReplaySource,
    JSONLTailSource,
    ManualClock,
    RefitterConfig,
    StreamRefitter,
    StreamWindow,
    TableReplaySource,
    WindowConfig,
    run_watch,
    segmentation_content_hash,
)


def make_layouts(n_bins=6):
    return (
        equi_width_layout("age", 0.0, 100.0, n_bins),
        equi_width_layout("salary", 0.0, 150_000.0, n_bins),
    )


def make_window(mode="tumbling", size=100, refit_every=None, n_bins=6):
    x_layout, y_layout = make_layouts(n_bins)
    encoding = CategoricalEncoding("group", ("A", "other"))
    return StreamWindow(
        x_layout, y_layout, encoding,
        WindowConfig(mode=mode, size=size, refit_every=refit_every),
    )


def random_bins(rng, n, n_bins=6, n_codes=2):
    return (
        rng.integers(0, n_bins, n),
        rng.integers(0, n_bins, n),
        rng.integers(0, n_codes, n),
    )


def assert_window_matches_fresh(window):
    """The streaming invariant, asserted bit-for-bit."""
    xs, ys, codes = window.surviving()
    fresh = BinArray(
        window.x_layout, window.y_layout, window.rhs_encoding,
        target_code=window.target_code,
    )
    fresh.add_chunk(xs, ys, codes)
    assert np.array_equal(fresh.counts, window.bin_array.counts)
    assert np.array_equal(fresh.totals, window.bin_array.totals)
    assert fresh.n_total == window.bin_array.n_total == len(xs)
    assert window.window_tuples == len(xs)


@pytest.fixture(scope="module")
def stream_table():
    """8k tuples of Function 2 data the streaming tests replay."""
    return repro.generate_synthetic(repro.SyntheticConfig(
        n_tuples=8_000, function_id=2, perturbation=0.05, seed=31,
    ))


# ----------------------------------------------------------------------
# Clocks and sources
# ----------------------------------------------------------------------
class TestClocks:
    def test_manual_clock_accumulates_sleeps(self):
        clock = ManualClock()
        clock.sleep(0.5)
        clock.sleep(1.5)
        assert clock.now() == 2.0
        assert clock.sleeps == [0.5, 1.5]

    def test_manual_clock_rejects_negative_sleep(self):
        with pytest.raises(ValueError):
            ManualClock().sleep(-1)


class TestTableReplaySource:
    def test_replays_every_tuple_in_order(self, stream_table):
        source = TableReplaySource(stream_table, chunk_rows=999)
        chunks = list(source.chunks())
        assert sum(len(c) for c in chunks) == len(stream_table)
        assert len(chunks) == 9
        replayed = np.concatenate([c.column("age") for c in chunks])
        assert np.array_equal(replayed, stream_table.column("age"))

    def test_pacing_goes_through_the_injected_clock(self, stream_table):
        clock = ManualClock()
        source = TableReplaySource(
            stream_table, chunk_rows=2_000, pace_seconds=0.25, clock=clock
        )
        assert len(list(source.chunks())) == 4
        # No sleep before the first chunk; one before each later chunk.
        assert clock.sleeps == [0.25, 0.25, 0.25]

    def test_rejects_bad_parameters(self, stream_table):
        with pytest.raises(ValueError):
            TableReplaySource(stream_table, chunk_rows=0)
        with pytest.raises(ValueError):
            TableReplaySource(stream_table, pace_seconds=-1)


class TestCSVReplaySource:
    def test_streams_the_file_in_chunks(self, stream_table, tmp_path):
        path = tmp_path / "stream.csv"
        write_csv(stream_table, path)
        source = CSVReplaySource(
            path, list(stream_table.schema.values()), chunk_rows=3_000
        )
        chunks = list(source.chunks())
        assert [len(c) for c in chunks] == [3_000, 3_000, 2_000]


class TestJSONLTailSource:
    SPECS = [
        quantitative("age", 0, 100),
        quantitative("salary", 0, 150_000),
        categorical("group", ("A", "other")),
    ]

    @staticmethod
    def _line(age, salary, group="A"):
        return json.dumps(
            {"age": age, "salary": salary, "group": group}
        ) + "\n"

    def test_tails_until_idle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            self._line(25, 50_000) + self._line(60, 90_000, "other")
        )
        clock = ManualClock()
        source = JSONLTailSource(
            path, self.SPECS, chunk_rows=10,
            poll_seconds=0.1, idle_polls=3, clock=clock,
        )
        chunks = list(source.chunks())
        assert [len(c) for c in chunks] == [2]
        assert chunks[0].column("group").tolist() == ["A", "other"]
        # The partial chunk flushed at the first dry poll, then the
        # source waited out its idle budget through the injected clock.
        assert clock.sleeps == [0.1, 0.1, 0.1]

    def test_sees_lines_appended_between_polls(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(self._line(25, 50_000))

        appended = []

        class AppendingClock(ManualClock):
            def sleep(self, seconds):
                super().sleep(seconds)
                if not appended:
                    with open(path, "a") as handle:
                        handle.write(self._line_out)
                    appended.append(True)

        clock = AppendingClock()
        clock._line_out = self._line(70, 30_000, "other")
        source = JSONLTailSource(
            path, self.SPECS, chunk_rows=10, idle_polls=2, clock=clock,
        )
        chunks = list(source.chunks())
        assert [len(c) for c in chunks] == [1, 1]
        assert chunks[1].column("age")[0] == 70

    def test_torn_trailing_line_is_never_parsed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        torn = '{"age": 25, "salary": 5'
        path.write_text(self._line(30, 60_000) + torn)

        class CompletingClock(ManualClock):
            """Finish the torn line during the first poll sleep."""

            def __init__(self):
                super().__init__()
                self.completed = False

            def sleep(self, seconds):
                super().sleep(seconds)
                if not self.completed:
                    with open(path, "a") as handle:
                        handle.write('0000, "group": "other"}\n')
                    self.completed = True

        source = JSONLTailSource(
            path, self.SPECS, chunk_rows=10, idle_polls=2,
            clock=CompletingClock(),
        )
        chunks = list(source.chunks())
        assert [len(c) for c in chunks] == [1, 1]
        assert chunks[1].column("salary")[0] == 50_000

    def test_invalid_json_line_fails_loudly(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("{broken\n")
        source = JSONLTailSource(path, self.SPECS, idle_polls=1,
                                 clock=ManualClock())
        with pytest.raises(ValueError, match="not valid JSON"):
            list(source.chunks())

    def test_missing_column_fails_loudly(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"age": 10, "salary": 20}\n')
        source = JSONLTailSource(path, self.SPECS, idle_polls=1,
                                 clock=ManualClock())
        with pytest.raises(ValueError, match="group"):
            list(source.chunks())


# ----------------------------------------------------------------------
# Window manager
# ----------------------------------------------------------------------
class TestTumblingWindow:
    def test_refit_due_once_size_reached(self):
        window = make_window(size=10)
        rng = np.random.default_rng(0)
        delta = window.ingest(*random_bins(rng, 6))
        assert not delta.refit_due
        delta = window.ingest(*random_bins(rng, 6))
        assert delta.refit_due
        assert delta.window_tuples == 12
        assert delta.expired == 0

    def test_mark_refit_expires_the_whole_window(self):
        window = make_window(size=10)
        rng = np.random.default_rng(1)
        window.ingest(*random_bins(rng, 12))
        assert window.mark_refit() == 12
        assert window.window_tuples == 0
        assert window.window_id == 1
        assert not window.bin_array.counts.any()
        assert not window.bin_array.totals.any()
        assert window.bin_array.n_total == 0
        assert_window_matches_fresh(window)

    def test_windows_are_independent(self):
        window = make_window(size=5)
        rng = np.random.default_rng(2)
        window.ingest(*random_bins(rng, 5))
        window.mark_refit()
        xs, ys, codes = random_bins(rng, 5)
        window.ingest(xs, ys, codes)
        fresh = BinArray(
            window.x_layout, window.y_layout, window.rhs_encoding
        )
        fresh.add_chunk(xs, ys, codes)
        assert np.array_equal(fresh.counts, window.bin_array.counts)


class TestSlidingWindow:
    def test_overflow_expires_oldest_tuples(self):
        window = make_window(mode="sliding", size=10)
        rng = np.random.default_rng(3)
        window.ingest(*random_bins(rng, 8))
        delta = window.ingest(*random_bins(rng, 8))
        assert delta.expired == 6
        assert delta.window_tuples == 10
        assert_window_matches_fresh(window)

    def test_mid_chunk_split_keeps_newest_tuples(self):
        window = make_window(mode="sliding", size=4)
        xs = np.arange(6) % 6
        ys = np.zeros(6, dtype=np.int64)
        codes = np.zeros(6, dtype=np.int64)
        window.ingest(xs, ys, codes)
        surviving_x, _, _ = window.surviving()
        assert surviving_x.tolist() == [2, 3, 4, 5]
        assert_window_matches_fresh(window)

    def test_giant_chunk_expires_across_chunks(self):
        window = make_window(mode="sliding", size=5)
        rng = np.random.default_rng(4)
        for _ in range(3):
            window.ingest(*random_bins(rng, 3))
        window.ingest(*random_bins(rng, 20))
        assert window.window_tuples == 5
        assert_window_matches_fresh(window)

    def test_refit_every_counts_tuples_between_refits(self):
        window = make_window(mode="sliding", size=50, refit_every=10)
        rng = np.random.default_rng(5)
        assert not window.ingest(*random_bins(rng, 6)).refit_due
        assert window.ingest(*random_bins(rng, 6)).refit_due
        assert window.mark_refit() == 0  # sliding keeps its history
        assert window.window_tuples == 12
        assert not window.ingest(*random_bins(rng, 6)).refit_due

    def test_default_cadence_refits_every_nonempty_chunk(self):
        window = make_window(mode="sliding", size=50)
        rng = np.random.default_rng(6)
        assert window.ingest(*random_bins(rng, 1)).refit_due
        empty = np.empty(0, dtype=np.int64)
        assert not window.ingest(empty, empty, empty).refit_due


class TestWindowConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            WindowConfig(mode="hopping")

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size"):
            WindowConfig(size=0)

    def test_rejects_nonpositive_refit_every(self):
        with pytest.raises(ValueError, match="refit_every"):
            WindowConfig(mode="sliding", refit_every=0)


# ----------------------------------------------------------------------
# Refitter
# ----------------------------------------------------------------------
def fitted_binner(table, n_bins=10):
    return Binner.fit(table, "age", "salary", "group", n_bins, n_bins)


def make_refitter(table, publish_dir, mode="tumbling", size=2_000,
                  refit_every=None, name="stream_A", **config):
    binner = fitted_binner(table)
    window = StreamWindow(
        binner.x_layout, binner.y_layout, binner.rhs_encoding,
        WindowConfig(mode=mode, size=size, refit_every=refit_every),
    )
    settings = RefitterConfig(
        min_support=config.pop("min_support", 0.002),
        min_confidence=config.pop("min_confidence", 0.3),
        **config,
    )
    return StreamRefitter(
        binner.x_layout, binner.y_layout, binner.rhs_encoding,
        window, "A", publish_dir, name, settings,
    )


class TestStreamRefitter:
    def test_bounded_replay_publishes_and_registry_serves_it(
            self, stream_table, tmp_path):
        refitter = make_refitter(stream_table, tmp_path)
        summary = run_watch(
            TableReplaySource(stream_table, chunk_rows=500), refitter
        )
        assert summary.tuples == len(stream_table)
        assert summary.refits == 4
        assert summary.publishes >= 1
        assert refitter.artefact_path.exists()
        registry = ModelRegistry(tmp_path, refresh_interval=0).load()
        model = registry.resolve("stream_A")
        # The registry derives the exact id the refresh event reported.
        last_published = [
            r for r in summary.records if r.published
        ][-1]
        assert model.model_id == last_published.model_id
        assert len(model.segmentation) == last_published.n_rules

    def test_unchanged_segmentation_skips_publish(self, stream_table,
                                                  tmp_path):
        refitter = make_refitter(stream_table, tmp_path, size=1_000)
        # The same 1k tuples twice: identical windows, identical rules.
        first = stream_table.head(1_000)
        chunks = TableReplaySource(first, chunk_rows=1_000)
        run_watch(chunks, refitter, flush=False)
        mtime = refitter.artefact_path.stat().st_mtime_ns
        summary = run_watch(
            TableReplaySource(first, chunk_rows=1_000), refitter,
            flush=False,
        )
        record = summary.records[0]
        assert not record.published
        assert record.model_id is None
        # Skipped publish really never touched the artefact.
        assert refitter.artefact_path.stat().st_mtime_ns == mtime

    def test_hot_reload_picks_up_a_refreshed_artefact(
            self, stream_table, tmp_path):
        refitter = make_refitter(stream_table, tmp_path, size=1_000)
        run_watch(
            TableReplaySource(stream_table.head(1_000),
                              chunk_rows=1_000),
            refitter, flush=False,
        )
        registry = ModelRegistry(tmp_path, refresh_interval=0).load()
        old_id = registry.resolve("stream_A").model_id
        # A different window of data publishes a different model...
        run_watch(
            TableReplaySource(
                stream_table.take(np.arange(4_000, 5_000)),
                chunk_rows=1_000,
            ),
            refitter, flush=False,
        )
        # ...and the registry's existing refresh path picks it up.
        assert registry.maybe_refresh()
        new = registry.resolve("stream_A")
        assert new.model_id != old_id
        assert new.model_id == refitter.last_record.model_id

    def test_refresh_events_are_emitted(self, stream_table, tmp_path):
        from repro.obs import events

        out = tmp_path / "events.jsonl"
        models = tmp_path / "models"
        models.mkdir()
        events.enable_events(out)
        try:
            refitter = make_refitter(stream_table, models, size=2_000)
            run_watch(
                TableReplaySource(stream_table, chunk_rows=500),
                refitter,
            )
        finally:
            events.disable_events()
        lines = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        refreshes = [
            e for e in lines if e["type"] == "stream.refresh"
        ]
        assert len(refreshes) == 4
        first = refreshes[0]
        assert first["window"] == 0
        assert first["window_tuples"] == 2_000
        assert first["published"] is True
        assert first["content_hash"]
        assert first["model_id"]
        assert first["path"].endswith("stream_A.json")

    def test_small_window_defers_refit(self, stream_table, tmp_path):
        refitter = make_refitter(
            stream_table, tmp_path, mode="sliding", size=1_000,
            min_window_tuples=500,
        )
        record = refitter.ingest(stream_table.head(100))
        assert record is None
        assert refitter.window.window_tuples == 100

    def test_publish_dir_must_exist(self, stream_table, tmp_path):
        with pytest.raises(NotADirectoryError):
            make_refitter(stream_table, tmp_path / "absent")

    def test_artefact_name_is_validated(self, stream_table, tmp_path):
        with pytest.raises(ValueError, match="invalid artefact name"):
            make_refitter(stream_table, tmp_path, name="../escape")
        with pytest.raises(ValueError, match="invalid artefact name"):
            make_refitter(stream_table, tmp_path, name=".hidden")

    def test_no_temp_files_left_behind(self, stream_table, tmp_path):
        refitter = make_refitter(stream_table, tmp_path)
        run_watch(
            TableReplaySource(stream_table, chunk_rows=500), refitter
        )
        assert [p.name for p in tmp_path.iterdir()] == ["stream_A.json"]

    def test_max_refits_bounds_the_run(self, stream_table, tmp_path):
        refitter = make_refitter(stream_table, tmp_path, size=1_000)
        summary = run_watch(
            TableReplaySource(stream_table, chunk_rows=500),
            refitter, max_refits=2,
        )
        assert summary.refits == 2

    def test_flush_refits_the_residual_tail(self, stream_table,
                                            tmp_path):
        refitter = make_refitter(stream_table, tmp_path, size=3_000)
        summary = run_watch(
            TableReplaySource(
                stream_table.head(4_000), chunk_rows=1_000
            ),
            refitter, flush=True,
        )
        # One full window refit plus the flushed 1k-tuple tail.
        assert summary.refits == 2
        assert summary.records[-1].window_tuples == 1_000

    def test_windowed_refit_equals_scratch_fit(self, stream_table,
                                               tmp_path):
        """The tentpole invariant, end to end: a sliding refit's rules
        are exactly a from-scratch fit on the window's tuples."""
        from repro.core.clusterer import GridClusterer
        from repro.core.optimizer import segmentation_from_outcome

        refitter = make_refitter(
            stream_table, tmp_path, mode="sliding", size=2_500,
            refit_every=2_500,
        )
        run_watch(
            TableReplaySource(stream_table, chunk_rows=700), refitter
        )
        window = refitter.window
        assert_window_matches_fresh(window)
        xs, ys, codes = window.surviving()
        scratch = BinArray(
            window.x_layout, window.y_layout, window.rhs_encoding
        )
        scratch.add_chunk(xs, ys, codes)
        outcome = GridClusterer().cluster(
            scratch, refitter.rhs_code, 0.002, 0.3
        )
        expected = segmentation_from_outcome(
            outcome, scratch, refitter.rhs_code
        )
        assert segmentation_content_hash(expected) == (
            segmentation_content_hash(
                segmentation_from_outcome(
                    GridClusterer().cluster(
                        window.bin_array, refitter.rhs_code, 0.002, 0.3
                    ),
                    window.bin_array, refitter.rhs_code,
                )
            )
        )

    def test_content_hash_ignores_volatile_metadata(self, stream_table,
                                                    tmp_path):
        from repro.persistence import load_segmentation, save_segmentation

        refitter = make_refitter(stream_table, tmp_path)
        run_watch(
            TableReplaySource(stream_table, chunk_rows=500), refitter
        )
        loaded = load_segmentation(refitter.artefact_path)
        assert segmentation_content_hash(loaded) == (
            refitter.published_hash
        )
        # Re-saving stamps new metadata but hashes identically.
        resaved = tmp_path / "resaved.json"
        save_segmentation(loaded, resaved)
        assert segmentation_content_hash(
            load_segmentation(resaved)
        ) == refitter.published_hash

    def test_run_watch_rejects_bad_max_refits(self, stream_table,
                                              tmp_path):
        refitter = make_refitter(stream_table, tmp_path)
        with pytest.raises(ValueError):
            run_watch(
                TableReplaySource(stream_table), refitter, max_refits=0
            )


class TestRefitterConfig:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            RefitterConfig(min_support=1.5)
        with pytest.raises(ValueError):
            RefitterConfig(min_confidence=-0.1)
        with pytest.raises(ValueError):
            RefitterConfig(min_window_tuples=0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestWatchCommand:
    @pytest.fixture()
    def csv_path(self, stream_table, tmp_path):
        path = tmp_path / "stream.csv"
        write_csv(stream_table, path)
        return path

    def test_csv_replay_publishes_into_models_dir(
            self, csv_path, tmp_path, capsys):
        models = tmp_path / "models"
        models.mkdir()
        events_out = tmp_path / "watch_events.jsonl"
        code = main([
            "watch", str(csv_path), "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--models", str(models), "--window", "2000",
            "--chunk-rows", "500", "--bins", "10",
            "--min-support", "0.002", "--min-confidence", "0.3",
            "--events-out", str(events_out),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "watching" in out
        assert "published" in out
        assert (models / "watch_A.json").exists()
        registry = ModelRegistry(models, refresh_interval=0).load()
        assert registry.resolve("watch_A")
        refreshes = [
            json.loads(line)
            for line in events_out.read_text().splitlines()
            if json.loads(line)["type"] == "stream.refresh"
        ]
        assert len(refreshes) >= 2

    def test_follow_tails_jsonl(self, stream_table, tmp_path, capsys):
        path = tmp_path / "stream.jsonl"
        with open(path, "w") as handle:
            for i in range(600):
                handle.write(json.dumps({
                    "age": float(stream_table.column("age")[i]),
                    "salary": float(stream_table.column("salary")[i]),
                    "group": str(stream_table.column("group")[i]),
                }) + "\n")
        models = tmp_path / "models"
        models.mkdir()
        code = main([
            "watch", str(path), "--follow", "--idle-polls", "1",
            "--poll-interval", "0", "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--models", str(models), "--window", "500",
            "--chunk-rows", "200", "--bins", "8",
            "--min-support", "0.002", "--min-confidence", "0.3",
        ])
        assert code == 0
        assert (models / "watch_A.json").exists()

    def test_missing_models_dir_is_a_clean_error(self, csv_path,
                                                 tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "watch", str(csv_path), "--x", "age", "--y", "salary",
                "--rhs", "group", "--target", "A",
                "--models", str(tmp_path / "absent"),
            ])

    def test_empty_input_is_a_clean_error(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("age,salary,group\n")
        models = tmp_path / "models"
        models.mkdir()
        with pytest.raises(SystemExit, match="holds no tuples"):
            main([
                "watch", str(empty), "--x", "age", "--y", "salary",
                "--rhs", "group", "--target", "A",
                "--models", str(models),
            ])
