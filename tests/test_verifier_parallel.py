"""Tests for the verifier's opt-in process-pool mode (``workers=N``).

The contract: for a fixed seed the parallel verifier returns the *same*
:class:`VerificationReport` as the serial one (per-repeat seeding makes
each repeat's sample independent of where it runs), and a dead worker
surfaces as a clear error instead of a hang.
"""

import numpy as np
import pytest

import repro.core.verifier as verifier_module

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.core.verifier import Verifier


def make_table(n=600, seed=11):
    from repro.data.schema import Table, categorical, quantitative

    rng = np.random.default_rng(seed)
    ages = rng.uniform(0, 100, n)
    salaries = rng.uniform(0, 100, n)
    labels = np.where(
        (ages < 50) & (salaries < 50), "A", "other"
    ).tolist()
    specs = [
        quantitative("age", 0, 100),
        quantitative("salary", 0, 100),
        categorical("group", ("A", "other")),
    ]
    return Table.from_columns(specs, {
        "age": ages, "salary": salaries, "group": labels,
    })


def make_segmentation():
    rule = ClusteredRule(
        "age", "salary", Interval(0, 50), Interval(0, 50),
        "group", "A", support=0.25, confidence=0.9,
    )
    return Segmentation.from_rules([rule])


class TestParallelMatchesSerial:
    def test_same_report_for_fixed_seed(self):
        table = make_table()
        seg = make_segmentation()
        serial = Verifier(table, "group", "A", sample_size=200,
                          repeats=6, seed=13, workers=1).verify(seg)
        parallel = Verifier(table, "group", "A", sample_size=200,
                            repeats=6, seed=13, workers=3).verify(seg)
        assert parallel == serial  # frozen dataclass: field-wise equality

    def test_workers_clamped_to_repeats(self):
        table = make_table(n=200)
        seg = make_segmentation()
        report = Verifier(table, "group", "A", sample_size=50,
                          repeats=2, seed=1, workers=8).verify(seg)
        assert report.repeats == 2

    def test_single_repeat_stays_serial(self):
        """repeats=1 short-circuits to the in-process path (no pool)."""
        table = make_table(n=100)
        seg = make_segmentation()
        a = Verifier(table, "group", "A", sample_size=40,
                     repeats=1, seed=3, workers=4).verify(seg)
        b = Verifier(table, "group", "A", sample_size=40,
                     repeats=1, seed=3, workers=1).verify(seg)
        assert a == b

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            Verifier(make_table(n=50), "group", "A", workers=0)
        with pytest.raises(ValueError):
            Verifier(make_table(n=50), "group", "A", workers=-2)


class TestCrossProcessMetrics:
    """Worker registries merge back into the parent's, so serial and
    parallel runs report identical sampling counters."""

    def _counters(self, workers):
        from repro.obs import metrics as metrics_mod
        registry = metrics_mod.MetricsRegistry()
        metrics_mod.enable(registry)
        try:
            Verifier(make_table(), "group", "A", sample_size=200,
                     repeats=6, seed=13, workers=workers,
                     ).verify(make_segmentation())
        finally:
            metrics_mod.disable()
        return registry.snapshot()["counters"]

    def test_parallel_counters_match_serial(self):
        serial = self._counters(workers=1)
        parallel = self._counters(workers=3)
        assert serial["verifier.samples_drawn"] == 6
        assert serial["verifier.tuples_sampled"] == 6 * 200
        assert parallel["verifier.samples_drawn"] == \
            serial["verifier.samples_drawn"]
        assert parallel["verifier.tuples_sampled"] == \
            serial["verifier.tuples_sampled"]
        assert parallel["verifier.parallel_batches"] == 3

    def test_parallel_without_metrics_stays_silent(self):
        from repro.obs import metrics as metrics_mod
        assert metrics_mod.active() is None
        report = Verifier(make_table(n=200), "group", "A",
                          sample_size=50, repeats=4, seed=2,
                          workers=2).verify(make_segmentation())
        assert report.repeats == 4
        assert metrics_mod.active() is None


class _CrashingFuture:
    def result(self):
        raise RuntimeError("worker ate a SIGKILL")


class _CrashingPool:
    """Stands in for ProcessPoolExecutor: every task dies."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args, **kwargs):
        return _CrashingFuture()


class TestWorkerFailure:
    def test_crashed_worker_surfaces_clear_error(self, monkeypatch):
        monkeypatch.setattr(
            verifier_module, "ProcessPoolExecutor", _CrashingPool
        )
        verifier = Verifier(make_table(n=100), "group", "A",
                            sample_size=30, repeats=4, seed=0, workers=2)
        with pytest.raises(RuntimeError) as excinfo:
            verifier.verify(make_segmentation())
        message = str(excinfo.value)
        assert "parallel verification failed" in message
        assert "repeats 0..1" in message  # names the failing block
        assert "workers=1" in message     # and the escape hatch

    def test_crash_error_chains_the_cause(self, monkeypatch):
        monkeypatch.setattr(
            verifier_module, "ProcessPoolExecutor", _CrashingPool
        )
        verifier = Verifier(make_table(n=100), "group", "A",
                            sample_size=30, repeats=2, seed=0, workers=2)
        with pytest.raises(RuntimeError) as excinfo:
            verifier.verify(make_segmentation())
        assert "worker ate a SIGKILL" in str(excinfo.value)
        assert excinfo.value.__cause__ is not None
