"""Unit tests for dynamic cluster pruning (paper Section 3.5)."""

import pytest

from repro.core.pruning import min_cells_for, prune_clusters
from repro.core.rules import GridRect


class TestMinCellsFor:
    def test_paper_default_on_50x50(self):
        assert min_cells_for((50, 50), 0.01) == 25

    def test_never_below_one(self):
        assert min_cells_for((5, 5), 0.01) == 1

    def test_zero_fraction(self):
        assert min_cells_for((100, 100), 0.0) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            min_cells_for((10, 10), 1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            min_cells_for((0, 10), 0.01)


class TestPruneClusters:
    def test_small_clusters_dropped(self):
        big = GridRect(0, 9, 0, 9)       # 100 cells
        small = GridRect(20, 20, 20, 20)  # 1 cell
        report = prune_clusters([big, small], (50, 50), fraction=0.01)
        assert report.kept == (big,)
        assert report.dropped == (small,)
        assert report.n_pruned == 1

    def test_all_large_means_no_pruning(self):
        clusters = [GridRect(0, 9, 0, 9), GridRect(20, 29, 20, 29)]
        report = prune_clusters(clusters, (50, 50), fraction=0.01)
        assert report.kept == tuple(clusters)
        assert report.n_pruned == 0

    def test_boundary_cluster_exactly_at_threshold_kept(self):
        exact = GridRect(0, 4, 0, 4)  # 25 cells == 1% of 50x50
        report = prune_clusters([exact], (50, 50), fraction=0.01)
        assert report.kept == (exact,)

    def test_order_preserved(self):
        first = GridRect(0, 9, 0, 9)
        second = GridRect(10, 19, 10, 19)
        report = prune_clusters([first, second], (50, 50))
        assert report.kept == (first, second)

    def test_empty_input(self):
        report = prune_clusters([], (50, 50))
        assert report.kept == ()
        assert report.dropped == ()

    def test_min_cells_recorded(self):
        report = prune_clusters([], (50, 50), fraction=0.02)
        assert report.min_cells == 50
