"""ARCS on generating functions other than the paper's Function 2.

The paper evaluates on Function 2 only; these tests check the system
is not specialised to it.  Functions 1 and 3 also have rectangular
Group-A regions (two age bands over all salaries; three age x elevel
blocks), so exact recovery is checkable.
"""

import numpy as np
import pytest

import repro
from repro.analysis.accuracy import exact_region_error
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.functions import true_regions

FAST = ARCSConfig(
    optimizer=OptimizerConfig(max_support_levels=6,
                              max_confidence_levels=8),
)


class TestFunction1:
    """Group A iff age < 40 or age >= 60 — two full-height stripes."""

    @pytest.fixture(scope="class")
    def result(self):
        table = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=20_000, function_id=1,
                                  perturbation=0.0, seed=201)
        )
        return ARCS(FAST).fit(table, "age", "salary", "group", "A")

    def test_two_stripes_found(self, result):
        assert len(result.segmentation) == 2

    def test_stripes_cover_full_salary_range(self, result):
        for rule in result.segmentation:
            assert rule.y_interval.low == pytest.approx(20_000)
            assert rule.y_interval.high == pytest.approx(150_000)

    def test_age_boundaries(self, result):
        rules = sorted(result.segmentation.rules,
                       key=lambda rule: rule.x_interval.low)
        young, old = rules
        assert young.x_interval.low == pytest.approx(20, abs=1.3)
        assert abs(young.x_interval.high - 40) <= 1.3
        assert abs(old.x_interval.low - 60) <= 1.3
        assert old.x_interval.high == pytest.approx(80, abs=1.3)

    def test_exact_region_error_small(self, result):
        report = exact_region_error(
            result.segmentation, true_regions(1),
            x_range=(20, 80), y_range=(20_000, 150_000),
        )
        assert report.total_error_area < 0.03


class TestFunction3:
    """Group A defined over age x elevel — a discrete second attribute
    (0..4), binned with one bin per value."""

    @pytest.fixture(scope="class")
    def fitted(self):
        table = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=20_000, function_id=3,
                                  perturbation=0.0, seed=202)
        )
        config = ARCSConfig(
            n_bins_x=30, n_bins_y=5,  # elevel: one bin per level
            optimizer=OptimizerConfig(max_support_levels=6,
                                      max_confidence_levels=8),
        )
        result = ARCS(config).fit(table, "age", "elevel", "group", "A")
        return table, result

    def test_segmentation_found(self, fitted):
        _, result = fitted
        assert 1 <= len(result.segmentation) <= 6

    def test_low_error(self, fitted):
        _, result = fitted
        assert result.best_trial.report.error_rate < 0.08

    # Generating bands: age band -> admissible elevel interval, using
    # the bin layout's value coordinates (bin width 0.8 over [0, 4]).
    BANDS = (
        ((20, 40), (0.0, 1.6)),    # elevel in {0, 1}
        ((40, 60), (0.8, 3.2)),    # elevel in {1, 2, 3}
        ((60, 80), (1.6, 4.0)),    # elevel in {2, 3, 4}
    )

    #: One age-bin width of boundary slack (30 bins over [20, 80]).
    AGE_SLACK = 2.0

    def test_rules_respect_elevel_bands(self, fitted):
        """For every age band a rule substantially overlaps, its elevel
        range must stay inside that band's admissible interval (a rule
        may legitimately span several bands through their intersection;
        one bin of age overhang at band edges is binning slack)."""
        _, result = fitted
        for rule in result.segmentation:
            for (age_lo, age_hi), (lev_lo, lev_hi) in self.BANDS:
                overlaps_band = (
                    rule.x_interval.low < age_hi - self.AGE_SLACK
                    and rule.x_interval.high > age_lo + self.AGE_SLACK
                )
                if not overlaps_band:
                    continue
                assert rule.y_interval.low >= lev_lo - 0.01, rule
                assert rule.y_interval.high <= lev_hi + 0.01, rule


class TestNonRectangularFunction:
    """Function 7's Group-A region is a half-plane in a derived
    variable; ARCS over (salary, loan) can only approximate it with
    rectangles, but must still produce something far better than the
    majority floor."""

    def test_approximates_halfplane(self):
        from repro.baselines.majority import majority_error_floor
        table = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=20_000, function_id=7,
                                  perturbation=0.0, seed=203,
                                  perturbed_attributes=()),
        )
        result = ARCS(FAST).fit(table, "salary", "loan", "group", "A")
        floor = majority_error_floor(table, "group", "A")
        assert len(result.segmentation) >= 1
        assert result.best_trial.report.error_rate < floor * 0.6