"""Property-based tests of BitOp against the brute-force oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitop import (
    BitOpClusterer,
    brute_force_maximal_rectangles,
    enumerate_rectangles,
    runs_of_set_bits,
)
from repro.core.grid import RuleGrid


@st.composite
def small_grids(draw, max_rows=7, max_cols=7):
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_cols, max_size=n_cols),
            min_size=n_rows, max_size=n_rows,
        )
    )
    return RuleGrid(np.array(bits, dtype=bool))


@given(st.integers(min_value=0, max_value=(1 << 24) - 1))
def test_runs_reconstruct_mask(mask):
    """Runs are a lossless decomposition of the mask."""
    rebuilt = 0
    previous_end = -1
    for start, length in runs_of_set_bits(mask):
        assert length >= 1
        assert start > previous_end  # runs are disjoint and ordered
        rebuilt |= ((1 << length) - 1) << start
        previous_end = start + length - 1
    assert rebuilt == mask


@given(st.integers(min_value=1, max_value=(1 << 24) - 1))
def test_runs_are_maximal(mask):
    """No run can be extended by one bit on either side."""
    for start, length in runs_of_set_bits(mask):
        if start > 0:
            assert not (mask >> (start - 1)) & 1
        assert not (mask >> (start + length)) & 1


@settings(max_examples=150, deadline=None)
@given(small_grids())
def test_enumeration_rectangles_are_fully_set(grid):
    rows = grid.row_bitmaps()
    for rect in enumerate_rectangles(rows):
        assert grid.covers(rect)


@settings(max_examples=100, deadline=None)
@given(small_grids())
def test_enumeration_superset_of_maximal_rectangles(grid):
    """Every maximal all-set rectangle appears among BitOp's candidates."""
    enumerated = set(enumerate_rectangles(grid.row_bitmaps()))
    for rect in brute_force_maximal_rectangles(grid):
        assert rect in enumerated


@settings(max_examples=150, deadline=None)
@given(small_grids())
def test_greedy_cover_is_exact_partition_of_set_cells(grid):
    """The greedy cover covers every set cell, covers no unset cell, and
    its rectangles are pairwise disjoint (each iteration clears what it
    claimed)."""
    clusters = BitOpClusterer().cluster(grid)
    covered = np.zeros_like(grid.cells)
    for rect in clusters:
        block = covered[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1]
        assert not block.any()  # disjoint
        covered[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = True
    assert np.array_equal(covered, grid.cells)


@settings(max_examples=100, deadline=None)
@given(small_grids())
def test_greedy_cover_sizes_are_non_increasing(grid):
    clusters = BitOpClusterer().cluster(grid)
    areas = [rect.area for rect in clusters]
    assert areas == sorted(areas, reverse=True)


@settings(max_examples=100, deadline=None)
@given(small_grids(), st.integers(2, 6))
def test_min_cells_floor_respected(grid, min_cells):
    clusters = BitOpClusterer(min_cells=min_cells).cluster(grid)
    assert all(rect.area >= min_cells for rect in clusters)
