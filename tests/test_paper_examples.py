"""The paper's own worked micro-examples, as executable tests.

Each test reconstructs an example the paper walks through by hand and
asserts the system reproduces its outcome: the four Section 3.3 rules
that cluster into one, the Figure 1/5 grid-and-clusters pictures, and
the clustered-rule semantics of Section 2.1.
"""

import numpy as np
import pytest

from repro.binning import bin_table
from repro.core.bitop import BitOpClusterer
from repro.core.clusterer import GridClusterer, clustered_rule_from_rect
from repro.core.grid import RuleGrid
from repro.core.rules import GridRect
from repro.data.schema import Table, categorical, quantitative


class TestSection33FourRules:
    """Section 3.3: four adjacent binned rules

        Age = a3 AND Salary = s5 => Group = A
        Age = a4 AND Salary = s6 => Group = A
        Age = a4 AND Salary = s5 => Group = A
        Age = a3 AND Salary = s6 => Group = A

    are subsumed by the single clustered rule
    ``a3 <= Age < a5 AND s5 <= Salary < s7 => Group = A``; with the
    paper's bin mappings that reads
    ``40 <= Age < 42 AND 40000 <= Salary < 60000 => Group = A``.
    """

    def build_table(self):
        # Age bins of width 1 starting at 38 (a3 = 40 is bin index 2);
        # salary bins of width 10k starting at 0 (s5 = 40k is index 4).
        # Populate the four example cells with Group A tuples, plus some
        # far-away 'other' mass so thresholds are meaningful.
        ages = [40.2, 41.5, 41.3, 40.7] * 5
        salaries = [42_350, 57_000, 48_750, 52_600] * 5
        groups = ["A"] * 20
        ages += [45.5] * 10
        salaries += [95_000] * 10
        groups += ["other"] * 10
        return Table.from_columns(
            [quantitative("age", 38, 48),
             quantitative("salary", 0, 100_000),
             categorical("group", ("A", "other"))],
            {"age": ages, "salary": salaries, "group": groups},
        )

    # The Section 3.3 example is about the clustering step alone; the
    # low-pass filter would (correctly) treat an isolated 2x2 block on
    # an otherwise empty grid as noise, so it stays off here.

    @staticmethod
    def _clusterer():
        from repro.core.clusterer import ClustererConfig
        return GridClusterer(ClustererConfig(smoothing=False))

    def test_four_cells_become_one_clustered_rule(self):
        table = self.build_table()
        binner = bin_table(table, "age", "salary", "group",
                           n_bins_x=10, n_bins_y=10)
        code = binner.rhs_encoding.code_of("A")
        outcome = self._clusterer().cluster(
            binner.bin_array, code, min_support=0.01,
            min_confidence=0.5,
        )
        assert outcome.n_rules == 1
        rule = outcome.rules[0]
        assert rule.x_interval.low == pytest.approx(40.0)
        assert rule.x_interval.high == pytest.approx(42.0)
        assert rule.y_interval.low == pytest.approx(40_000.0)
        assert rule.y_interval.high == pytest.approx(60_000.0)
        assert rule.rhs_value == "A"

    def test_clustered_rule_subsumes_the_four_originals(self):
        table = self.build_table()
        binner = bin_table(table, "age", "salary", "group",
                           n_bins_x=10, n_bins_y=10)
        code = binner.rhs_encoding.code_of("A")
        outcome = self._clusterer().cluster(
            binner.bin_array, code, 0.01, 0.5
        )
        rule = outcome.rules[0]
        originals = [
            (40, 42_350), (41, 57_000), (41, 48_750), (40, 52_600),
        ]
        for age, salary in originals:
            assert rule.matches([age], [salary])[0]


class TestFigure5TwoClusters:
    """Figure 5 shows a grid whose rule mass is best covered by two
    rectangles.  We reconstruct an equivalent grid (two disjoint dense
    blocks plus their ragged contact) and check the greedy cover plus
    merging lands on exactly two clusters."""

    def test_two_cluster_cover(self):
        grid = RuleGrid.empty(8, 6)
        grid.set_rect(GridRect(0, 3, 0, 2))   # lower-left block
        grid.set_rect(GridRect(4, 7, 3, 5))   # upper-right block
        clusters = BitOpClusterer().cluster(grid)
        assert sorted(clusters) == [
            GridRect(0, 3, 0, 2), GridRect(4, 7, 3, 5)
        ]


class TestSection21Guarantee:
    """Section 2.1: "Clustered association rules will always have a
    support and confidence of at least that of the minimum threshold
    levels" — exact when the grid is used as mined (no smoothing)."""

    @pytest.mark.parametrize("min_support,min_confidence",
                             [(0.001, 0.5), (0.005, 0.8)])
    def test_guarantee_without_smoothing(self, f2_binner, min_support,
                                         min_confidence):
        from repro.core.clusterer import ClustererConfig
        code = f2_binner.rhs_encoding.code_of("A")
        config = ClustererConfig(smoothing=False, merge_clusters=False,
                                 prune_fraction=0.0)
        outcome = GridClusterer(config).cluster(
            f2_binner.bin_array, code, min_support, min_confidence
        )
        for rule in outcome.rules:
            assert rule.support >= min_support - 1e-12
            assert rule.confidence >= min_confidence - 1e-12


class TestFigure1Rendering:
    """Figure 1's presentation: a grid over age x salary with clusters
    drawn as outlines.  We assert the renderer produces the figure's
    structural elements."""

    def test_render_contains_axes_and_clusters(self, f2_binner):
        from repro.mining.engine import rule_pairs
        from repro.viz.ascii import render_grid
        code = f2_binner.rhs_encoding.code_of("A")
        pairs = rule_pairs(f2_binner.bin_array, code, 0.0005, 0.6)
        grid = RuleGrid.from_pairs(
            pairs, f2_binner.bin_array.n_x, f2_binner.bin_array.n_y
        )
        clusters = BitOpClusterer().cluster(grid)
        art = render_grid(grid, clusters[:3], x_label="Age",
                          y_label="Salary")
        assert "Age" in art and "Salary" in art
        assert "@" in art  # rule cells inside clusters
