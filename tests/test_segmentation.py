"""Unit tests for the Segmentation object."""

import numpy as np
import pytest

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation


def make_rule(x_lo, x_hi, y_lo, y_hi, **overrides):
    kwargs = dict(
        x_attribute="age",
        y_attribute="salary",
        x_interval=Interval(x_lo, x_hi),
        y_interval=Interval(y_lo, y_hi),
        rhs_attribute="group",
        rhs_value="A",
        support=0.1,
        confidence=0.9,
    )
    kwargs.update(overrides)
    return ClusteredRule(**kwargs)


@pytest.fixture()
def segmentation():
    return Segmentation.from_rules([
        make_rule(20, 40, 50_000, 100_000),
        make_rule(60, 80, 25_000, 75_000),
    ])


class TestConstruction:
    def test_from_rules_infers_attributes(self, segmentation):
        assert segmentation.x_attribute == "age"
        assert segmentation.rhs_value == "A"
        assert len(segmentation) == 2

    def test_from_rules_rejects_empty(self):
        with pytest.raises(ValueError):
            Segmentation.from_rules([])

    def test_explicit_empty_segmentation(self):
        empty = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        assert empty.is_empty
        assert not empty.covers([30.0], [60_000.0])[0]

    def test_rejects_inconsistent_rules(self):
        with pytest.raises(ValueError):
            Segmentation(
                rules=(make_rule(0, 1, 0, 1, x_attribute="height"),),
                x_attribute="age", y_attribute="salary",
                rhs_attribute="group", rhs_value="A",
            )

    def test_rejects_mixed_rhs_values(self):
        with pytest.raises(ValueError):
            Segmentation.from_rules([
                make_rule(0, 1, 0, 1),
                make_rule(2, 3, 2, 3, rhs_value="other"),
            ])


class TestCoverage:
    def test_covers_any_rule(self, segmentation):
        got = segmentation.covers(
            [30, 70, 50, 30], [60_000, 50_000, 60_000, 200_000]
        )
        assert list(got) == [True, True, False, False]

    def test_covers_table(self, segmentation, tiny_table):
        covered = segmentation.covers_table(tiny_table)
        assert covered.dtype == bool
        assert len(covered) == len(tiny_table)

    def test_predict_labels(self, segmentation, tiny_table):
        labels = segmentation.predict_labels(tiny_table, "other")
        assert set(labels) <= {"A", "other"}
        covered = segmentation.covers_table(tiny_table)
        assert ((labels == "A") == covered).all()

    def test_iteration(self, segmentation):
        assert len(list(segmentation)) == 2


class TestReporting:
    def test_describe_lists_rules(self, segmentation):
        text = segmentation.describe()
        assert text.count("=>") == 2
        assert "group = A" in text

    def test_describe_empty(self):
        empty = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        assert "empty segmentation" in empty.describe()

    def test_total_support(self, segmentation):
        assert segmentation.total_support() == pytest.approx(0.2)
