"""Tests for the request-batching queue (repro.serve.batching)."""

import threading
import time

import numpy as np
import pytest

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.obs import metrics
from repro.perf.reference import score_batch_scalar
from repro.serve import (
    BatchingError,
    BatchQueue,
    DrainingError,
    ModelRegistry,
    PredictionService,
    QueueFullError,
    ServiceError,
    compile_scorer,
)
from repro.serve.scorer import ScoringError
from repro.persistence import save_segmentation


def make_rule(x_lo, x_hi, y_lo, y_hi, *, rhs="A"):
    return ClusteredRule(
        "age", "salary", Interval(x_lo, x_hi), Interval(y_lo, y_hi),
        "group", rhs, support=0.1, confidence=0.9,
    )


@pytest.fixture()
def segmentation():
    return Segmentation.from_rules([
        make_rule(20, 40, 50_000, 100_000),
        make_rule(60, 80, 25_000, 75_000),
    ])


@pytest.fixture()
def scorer(segmentation):
    return compile_scorer(segmentation)


@pytest.fixture()
def queue():
    built = BatchQueue()
    yield built
    built.close()


class CountingScorer:
    """Wraps a real scorer, recording every gather's size."""

    def __init__(self, scorer):
        self.scorer = scorer
        self.segmentation = scorer.segmentation
        self.calls = []
        self._lock = threading.Lock()

    def score_batch(self, x_values, y_values):
        with self._lock:
            self.calls.append(len(x_values))
        return self.scorer.score_batch(x_values, y_values)


class TestBatchQueue:
    def test_single_submission_matches_direct(self, queue, scorer,
                                              segmentation):
        x = np.array([25.0, 70.0, 5.0])
        y = np.array([60_000.0, 50_000.0, 1.0])
        result = queue.submit(scorer, x, y)
        assert np.array_equal(result, scorer.score_batch(x, y))
        assert np.array_equal(
            result, score_batch_scalar(segmentation, x, y)
        )

    def test_concurrent_submissions_coalesce(self, segmentation):
        counting = CountingScorer(compile_scorer(segmentation))
        # A long window so every thread lands in one flush.
        queue = BatchQueue(max_delay_seconds=0.2)
        try:
            results = {}
            barrier = threading.Barrier(8)

            def submit(index):
                barrier.wait()
                x = np.array([25.0 + index])
                y = np.array([60_000.0])
                results[index] = queue.submit(counting, x, y)

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            queue.close()
        # All 8 points answered, in strictly fewer gathers than calls
        # (the barrier makes a fully serial schedule impossible).
        assert sorted(results) == list(range(8))
        assert sum(counting.calls) == 8
        assert len(counting.calls) < 8
        for index, result in results.items():
            expected = score_batch_scalar(
                segmentation, [25.0 + index], [60_000.0]
            )
            assert np.array_equal(result, expected)

    def test_batched_equals_unbatched_bitwise(self, queue, scorer,
                                              segmentation):
        rng = np.random.default_rng(42)
        for _ in range(10):
            x = rng.uniform(0, 100, 17)
            y = rng.uniform(0, 120_000, 17)
            assert np.array_equal(
                queue.submit(scorer, x, y),
                score_batch_scalar(segmentation, x, y),
            )

    def test_oversized_batch_passes_through(self, scorer):
        queue = BatchQueue(max_batch=4)
        try:
            x = np.full(32, 25.0)
            y = np.full(32, 60_000.0)
            result = queue.submit(scorer, x, y)
            assert len(result) == 32
        finally:
            queue.close()

    def test_nan_fails_only_the_bad_submission(self, queue, scorer):
        with pytest.raises(ScoringError, match="NaN"):
            queue.submit(scorer, [np.nan], [1.0])
        # The queue keeps working for clean input afterwards.
        assert len(queue.submit(scorer, [25.0], [60_000.0])) == 1

    def test_shape_mismatch_rejected(self, queue, scorer):
        with pytest.raises(ScoringError, match="differ in shape"):
            queue.submit(scorer, [1.0, 2.0], [1.0])

    def test_queue_full_sheds(self, scorer):
        queue = BatchQueue(max_depth=1, max_delay_seconds=0.0)
        started = threading.Event()
        release = threading.Event()

        class SlowScorer:
            segmentation = scorer.segmentation

            def score_batch(self, x_values, y_values):
                started.set()
                assert release.wait(30.0), "test never released scorer"
                return scorer.score_batch(x_values, y_values)

        slow = SlowScorer()
        try:
            filler = threading.Thread(
                target=lambda: queue.submit(slow, [25.0], [60_000.0])
            )
            filler.start()
            assert started.wait(5.0)
            # The collector is busy inside score_batch; the next
            # submission fills the queue to max_depth, the one after
            # that sheds.
            second = threading.Thread(
                target=lambda: queue.submit(slow, [26.0], [60_000.0])
            )
            second.start()
            deadline = time.monotonic() + 5.0  # wall-clock: ok
            while queue.depth < 1:
                assert time.monotonic() < deadline  # wall-clock: ok
                time.sleep(0.005)
            with pytest.raises(QueueFullError, match="full"):
                queue.submit(scorer, [27.0], [60_000.0])
            release.set()
            filler.join(5.0)
            second.join(5.0)
        finally:
            release.set()
            queue.close()

    def test_close_refuses_new_work(self, scorer):
        queue = BatchQueue()
        queue.close()
        assert queue.closed
        with pytest.raises(DrainingError):
            queue.submit(scorer, [25.0], [60_000.0])
        queue.close()  # idempotent

    def test_close_flushes_queued_work(self, segmentation):
        counting = CountingScorer(compile_scorer(segmentation))
        queue = BatchQueue(max_delay_seconds=0.5)
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                queue.submit(counting, [25.0], [60_000.0])
            )
        )
        worker.start()
        deadline = time.monotonic() + 5.0  # wall-clock: ok
        while not counting.calls and queue.depth == 0:
            assert time.monotonic() < deadline  # wall-clock: ok
            time.sleep(0.002)
        # Draining must flush the queued submission, not strand it.
        queue.close()
        worker.join(5.0)
        assert not worker.is_alive()
        assert len(results) == 1

    def test_invalid_knobs_rejected(self):
        with pytest.raises(BatchingError):
            BatchQueue(max_delay_seconds=-1)
        with pytest.raises(BatchingError):
            BatchQueue(max_batch=0)
        with pytest.raises(BatchingError):
            BatchQueue(max_depth=0)

    def test_scoring_crash_answers_all_waiters(self, scorer):
        class BrokenScorer:
            segmentation = scorer.segmentation

            def score_batch(self, x_values, y_values):
                raise RuntimeError("table corrupted")

        queue = BatchQueue()
        try:
            with pytest.raises(RuntimeError, match="table corrupted"):
                queue.submit(BrokenScorer(), [25.0], [60_000.0])
            # The collector survives and keeps serving.
            assert len(queue.submit(scorer, [25.0], [60_000.0])) == 1
        finally:
            queue.close()

    def test_queue_depth_gauge_is_exported(self, scorer):
        registry = metrics.enable(metrics.MetricsRegistry())
        try:
            queue = BatchQueue()
            try:
                snapshot = registry.snapshot()
                assert snapshot["gauges"]["serve.queue_depth"] == 0
                queue.submit(scorer, [25.0], [60_000.0])
            finally:
                queue.close()
            assert (
                registry.snapshot()["gauges"]["serve.queue_depth"] == 0
            )
        finally:
            metrics.disable()


class TestServiceWithBatcher:
    @pytest.fixture()
    def model_dir(self, tmp_path, segmentation):
        directory = tmp_path / "models"
        directory.mkdir()
        save_segmentation(segmentation, directory / "groupA.json")
        return directory

    def make_service(self, model_dir, batcher):
        return PredictionService(
            ModelRegistry(model_dir, refresh_interval=0).load(),
            batcher=batcher,
        )

    def test_batched_service_matches_direct(self, model_dir):
        queue = BatchQueue()
        try:
            batched = self.make_service(model_dir, queue)
            direct = self.make_service(model_dir, None)
            payload = {"model": "groupA", "x": [25, 70, 5],
                       "y": [60_000, 50_000, 1]}
            assert (batched.predict_batch(dict(payload))
                    == direct.predict_batch(dict(payload)))
            single = {"model": "groupA", "x": 25, "y": 60_000}
            assert (batched.predict(dict(single))
                    == direct.predict(dict(single)))
        finally:
            queue.close()

    def test_shed_maps_to_429_and_counts(self, model_dir):
        class SheddingQueue:
            def submit(self, scorer, x_values, y_values):
                raise QueueFullError("batch queue is full")

        registry = metrics.enable(metrics.MetricsRegistry())
        try:
            service = self.make_service(model_dir, SheddingQueue())
            status, body = service.dispatch(
                "predict", {"model": "groupA", "x": 25, "y": 60_000}
            )
            assert status == 429
            assert "full" in body["error"]
            counters = registry.snapshot()["counters"]
            assert counters[
                'serve.shed_total{endpoint="predict"}'
            ] == 1
        finally:
            metrics.disable()

    def test_draining_queue_maps_to_503(self, model_dir):
        queue = BatchQueue()
        queue.close()
        service = self.make_service(model_dir, queue)
        status, body = service.dispatch(
            "predict", {"model": "groupA", "x": 25, "y": 60_000}
        )
        assert status == 503
        assert "draining" in body["error"]

    def test_nan_still_maps_to_400(self, model_dir):
        queue = BatchQueue()
        try:
            service = self.make_service(model_dir, queue)
            with pytest.raises(ServiceError) as info:
                service.predict(
                    {"model": "groupA", "x": float("nan"), "y": 1}
                )
            assert info.value.status == 400
        finally:
            queue.close()
