"""Integration tests for the end-to-end ARCS system."""

import numpy as np
import pytest

import repro
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.functions import true_regions

FAST_OPTIMIZER = OptimizerConfig(max_support_levels=6,
                                 max_confidence_levels=4)


@pytest.fixture(scope="module")
def fitted(request):
    """One fitted ARCS result shared by this module's assertions."""
    config = repro.SyntheticConfig(
        n_tuples=20_000, function_id=2, perturbation=0.05, seed=42
    )
    table = repro.generate_synthetic(config)
    arcs = ARCS(ARCSConfig(optimizer=FAST_OPTIMIZER))
    return table, arcs.fit(table, "age", "salary", "group", "A")


class TestHeadlineResult:
    """Paper Section 4.2: ARCS always produced three clustered rules,
    each very similar to the generating rules."""

    def test_exactly_three_rules(self, fitted):
        _, result = fitted
        assert len(result.segmentation) == 3

    def test_rules_match_generating_regions(self, fitted):
        _, result = fitted
        regions = list(true_regions(2))
        # Bin widths at the default 50 bins: age 1.2, salary 2600.
        # Perturbation blurs boundaries, so allow a few bins of slack.
        for rule in result.segmentation:
            best = min(
                regions,
                key=lambda region: abs(rule.x_interval.low - region.x_lo),
            )
            assert abs(rule.x_interval.low - best.x_lo) <= 4 * 1.2
            assert abs(rule.x_interval.high - best.x_hi) <= 4 * 1.2
            assert abs(rule.y_interval.low - best.y_lo) <= 4 * 2600
            assert abs(rule.y_interval.high - best.y_hi) <= 4 * 2600

    def test_error_rate_low(self, fitted):
        _, result = fitted
        assert result.best_trial.report.error_rate < 0.12

    def test_history_and_best_consistent(self, fitted):
        _, result = fitted
        assert result.best_trial in result.history
        assert result.best_trial.mdl_cost == min(
            trial.mdl_cost for trial in result.history
        )

    def test_stop_reason_recorded(self, fitted):
        _, result = fitted
        assert result.stopped_by in (
            "no improvement", "time budget", "exhausted"
        )


class TestRemine:
    def test_remine_without_data_pass(self, fitted):
        _, result = fitted
        before = result.binner.bin_array.n_total
        segmentation = result.remine(
            result.best_trial.min_support,
            result.best_trial.min_confidence,
        )
        assert result.binner.bin_array.n_total == before
        assert len(segmentation) == len(result.segmentation)

    def test_remine_at_impossible_thresholds_is_empty(self, fitted):
        _, result = fitted
        segmentation = result.remine(0.99, 0.99)
        assert segmentation.is_empty

    def test_remine_is_fast(self, fitted):
        """The paper's 'nearly instantaneous' claim, loosely enforced."""
        import time
        _, result = fitted
        start = time.perf_counter()
        result.remine(0.001, 0.7)
        assert time.perf_counter() - start < 1.0


class TestConfiguration:
    def test_rejects_bad_bin_counts(self):
        with pytest.raises(ValueError):
            ARCSConfig(n_bins_x=0)

    def test_single_target_memory_mode(self):
        config = repro.SyntheticConfig(n_tuples=5_000, seed=1)
        table = repro.generate_synthetic(config)
        arcs = ARCS(ARCSConfig(
            optimizer=FAST_OPTIMIZER, single_target_memory=True,
            n_bins_x=20, n_bins_y=20,
        ))
        result = arcs.fit(table, "age", "salary", "group", "A")
        assert result.binner.bin_array.single_target
        assert len(result.segmentation) >= 1

    def test_describe_contains_rules_and_thresholds(self, fitted):
        _, result = fitted
        text = result.describe()
        assert "group = A" in text
        assert "support>=" in text

    def test_verification_table_can_be_held_out(self):
        train = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=10_000, seed=2)
        )
        held_out = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=5_000, seed=3)
        )
        arcs = ARCS(ARCSConfig(optimizer=FAST_OPTIMIZER,
                               n_bins_x=25, n_bins_y=25))
        result = arcs.fit(
            train, "age", "salary", "group", "A",
            verification_table=held_out,
        )
        assert len(result.segmentation) >= 1

    def test_unknown_target_value_rejected(self, fitted):
        table, _ = fitted
        arcs = ARCS(ARCSConfig(optimizer=FAST_OPTIMIZER))
        with pytest.raises(KeyError):
            arcs.fit(table, "age", "salary", "group", "no-such-group")


class TestOutlierRobustness:
    # Outlier background needs a fine confidence axis to threshold away;
    # a too-coarse optimizer admits spurious low-confidence rectangles.
    OUTLIER_OPTIMIZER = OptimizerConfig(max_support_levels=6,
                                        max_confidence_levels=8)

    def test_three_rules_survive_outliers(self, f2_outlier_table):
        """Paper Figure 12 setting: 10% outliers still yield the three
        generating clusters."""
        arcs = ARCS(ARCSConfig(optimizer=self.OUTLIER_OPTIMIZER))
        result = arcs.fit(
            f2_outlier_table, "age", "salary", "group", "A"
        )
        assert len(result.segmentation) == 3

    def test_error_bounded_by_outliers_plus_noise(self, f2_outlier_table):
        arcs = ARCS(ARCSConfig(optimizer=self.OUTLIER_OPTIMIZER))
        result = arcs.fit(
            f2_outlier_table, "age", "salary", "group", "A"
        )
        # 10% flipped labels are irreducible; structure adds a bit more.
        assert 0.10 <= result.best_trial.report.error_rate < 0.25
