"""Unit tests for the streaming-telemetry modules.

Covers the JSONL event sink (sampling, rotation), the Chrome
trace-event exporter (Perfetto-loadable structure), the sampling
profiler (collapsed stacks), and the Prometheus exposition
(render + parse round trip).
"""

import json
import threading
import time

import pytest

from repro.obs import events as events_mod
from repro.obs import metrics as metrics_mod
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SamplingProfiler, profile_for
from repro.obs.prometheus import (
    CONTENT_TYPE,
    PrometheusParseError,
    parse_prometheus,
    render_prometheus,
    render_registry,
)
from repro.obs.report import RunReport
from repro.obs.trace_export import (
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.tracing import Span


@pytest.fixture(autouse=True)
def telemetry_disabled():
    """Every test starts and ends with the global hooks uninstalled."""
    metrics_mod.disable()
    events_mod.disable_events()
    yield
    metrics_mod.disable()
    events_mod.disable_events()


def read_events(path):
    return [json.loads(line)
            for line in path.read_text().splitlines()]


class TestEventSink:
    def test_emit_writes_jsonl_with_ts_and_type(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path) as sink:
            assert sink.emit("request", endpoint="predict", status=200)
        (line,) = read_events(path)
        assert line["type"] == "request"
        assert line["endpoint"] == "predict"
        assert line["status"] == 200
        assert line["ts"] > 0

    def test_sampling_is_deterministic_per_type(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path, sample_every=3) as sink:
            kept = [sink.emit("request", i=i) for i in range(9)]
            # A second type has its own counter: its first event is
            # always kept no matter how many requests came before.
            assert sink.emit("stage", name="binning")
        assert kept == [True, False, False] * 3
        assert sink.emitted == 4
        assert sink.sampled_out == 6
        kept_indices = [line["i"] for line in read_events(path)
                        if line["type"] == "request"]
        assert kept_indices == [0, 3, 6]

    def test_sampling_bumps_loss_counter(self, tmp_path):
        registry = MetricsRegistry()
        metrics_mod.enable(registry)
        with EventSink(tmp_path / "e.jsonl", sample_every=2) as sink:
            for i in range(4):
                sink.emit("request", i=i)
        counters = registry.snapshot()["counters"]
        assert counters["obs.events_emitted"] == 2
        assert counters["obs.events_sampled_out"] == 2

    def test_rotation_caps_file_size(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path, max_bytes=1024, backups=2) as sink:
            for i in range(40):
                sink.emit("request", payload="x" * 64, i=i)
        assert sink.rotations >= 1
        assert path.stat().st_size <= 1024
        rotated = path.with_name("events.jsonl.1")
        assert rotated.exists()
        # Every generation is still valid JSONL.
        for line in rotated.read_text().splitlines():
            json.loads(line)

    def test_rotation_without_backups_discards(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path, max_bytes=1024, backups=0) as sink:
            for i in range(40):
                sink.emit("request", payload="x" * 64, i=i)
        assert sink.rotations >= 1
        assert not path.with_name("events.jsonl.1").exists()

    @pytest.mark.parametrize("kwargs", [
        {"sample_every": 0},
        {"max_bytes": 100},
        {"backups": -1},
    ])
    def test_rejects_bad_configuration(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            EventSink(tmp_path / "e.jsonl", **kwargs)

    def test_module_emit_is_noop_until_enabled(self, tmp_path):
        assert events_mod.emit("request", endpoint="predict") is False
        assert events_mod.active_sink() is None
        sink = events_mod.enable_events(tmp_path / "e.jsonl")
        assert events_mod.events_enabled()
        assert events_mod.active_sink() is sink
        assert events_mod.emit("request", endpoint="predict") is True
        events_mod.disable_events()
        assert not events_mod.events_enabled()
        assert events_mod.emit("request") is False

    def test_module_emit_swallows_io_errors(self, tmp_path):
        class ExplodingSink(EventSink):
            def emit(self, event_type, **fields):
                raise OSError("disk on fire")

        events_mod.enable_events(ExplodingSink(tmp_path / "e.jsonl"))
        assert events_mod.emit("request", endpoint="predict") is False

    def test_non_serializable_fields_are_stringified(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventSink(path) as sink:
            sink.emit("request", path=path)
        (line,) = read_events(path)
        assert line["path"] == str(path)


def make_span_tree():
    """A root with two children, explicit start times and durations."""
    return Span.from_dict({
        "name": "arcs.fit",
        "started_seconds": 100.0,
        "duration_seconds": 1.0,
        "children": [
            {"name": "binning", "started_seconds": 100.1,
             "duration_seconds": 0.2,
             "attributes": {"bins": 20}},
            {"name": "clustering", "started_seconds": 100.5,
             "duration_seconds": 0.4},
        ],
    })


class TestChromeTrace:
    def test_document_structure_is_perfetto_loadable(self):
        doc = chrome_trace(make_span_tree())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        meta = events[0]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        slices = events[1:]
        assert [e["ph"] for e in slices] == ["X"] * 3
        for e in slices:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["cat"] == "arcs"

    def test_timestamps_relative_to_root_start(self):
        events = chrome_trace_events(make_span_tree())
        by_name = {e["name"]: e for e in events}
        assert by_name["arcs.fit"]["ts"] == 0.0
        assert by_name["binning"]["ts"] == pytest.approx(0.1e6)
        assert by_name["clustering"]["ts"] == pytest.approx(0.5e6)
        assert by_name["binning"]["dur"] == pytest.approx(0.2e6)
        assert by_name["binning"]["args"] == {"bins": 20}

    def test_stacked_fallback_without_start_times(self):
        tree = Span.from_dict({
            "name": "root", "duration_seconds": 1.0,
            "children": [
                {"name": "a", "duration_seconds": 0.25},
                {"name": "b", "duration_seconds": 0.5},
            ],
        })
        events = chrome_trace_events(tree)
        by_name = {e["name"]: e for e in events}
        # Each child starts where its previous sibling ended.
        assert by_name["a"]["ts"] == 0.0
        assert by_name["b"]["ts"] == pytest.approx(0.25e6)

    def test_report_without_span_tree_raises(self):
        report = RunReport(name="arcs.fit", started_at=0.0,
                           duration_seconds=1.0, trace=None)
        with pytest.raises(ValueError, match="no span tree"):
            chrome_trace(report)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        out = tmp_path / "trace.json"
        report = RunReport(name="arcs.fit", started_at=0.0,
                           duration_seconds=1.0,
                           trace=make_span_tree().to_dict())
        write_chrome_trace(out, report)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["args"]["name"] == "arcs: arcs.fit"
        assert len(doc["traceEvents"]) == 4

    def test_rejects_unexportable_source(self):
        with pytest.raises(TypeError):
            chrome_trace(object())


def _spin_for(seconds):
    """Busy-loop so the profiler has something to catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


class TestSamplingProfiler:
    def test_samples_a_busy_main_thread(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin_for(0.3)
        assert profiler.samples > 0
        collapsed = profiler.collapsed()
        assert "_spin_for" in collapsed
        for line in collapsed.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack.split(";")[0]  # thread label leads the stack

    def test_own_sampler_thread_is_excluded(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin_for(0.1)
        assert "arcs-profiler" not in profiler.collapsed()

    def test_start_twice_is_an_error(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_harmless(self):
        SamplingProfiler().stop()

    def test_reset_clears_accumulated_samples(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin_for(0.1)
        assert profiler.samples > 0
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.collapsed() == ""

    def test_records_sample_count_metric(self):
        registry = MetricsRegistry()
        metrics_mod.enable(registry)
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin_for(0.2)
        counters = registry.snapshot()["counters"]
        assert counters["obs.profile_samples"] == profiler.samples > 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_profile_for_returns_folded_stacks(self):
        spinner = threading.Thread(
            target=_spin_for, args=(0.4,), name="busy-worker"
        )
        spinner.start()
        try:
            collapsed = profile_for(0.3, interval=0.001)
        finally:
            spinner.join()
        assert "busy-worker" in collapsed

    def test_profile_for_rejects_nonpositive_seconds(self):
        with pytest.raises(ValueError):
            profile_for(0)


class TestPrometheusExposition:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.counter("serve.request_errors",
                         labels={"endpoint": "predict"}).inc(2)
        registry.gauge("serve.models_loaded").set(3)
        histogram = registry.histogram(
            "serve.request_seconds", labels={"endpoint": "predict"},
            buckets=(0.1, 1.0),
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_render_and_parse_round_trip(self):
        text = render_prometheus(self.make_registry().snapshot())
        families = parse_prometheus(text)
        counter = families["arcs_serve_requests_total"]
        assert counter["kind"] == "counter"
        assert counter["samples"] == [
            ("arcs_serve_requests_total", {}, "7"),
        ]
        errors = families["arcs_serve_request_errors_total"]
        assert errors["samples"] == [(
            "arcs_serve_request_errors_total",
            {"endpoint": "predict"}, "2",
        )]
        gauge = families["arcs_serve_models_loaded"]
        assert gauge["kind"] == "gauge"

    def test_histogram_expands_to_bucket_sum_count(self):
        text = render_prometheus(self.make_registry().snapshot())
        latency = parse_prometheus(text)["arcs_serve_request_seconds"]
        assert latency["kind"] == "histogram"
        buckets = [s for s in latency["samples"]
                   if s[0].endswith("_bucket")]
        bounds = [s[1]["le"] for s in buckets]
        assert bounds == ["0.1", "1.0", "+Inf"]
        assert [int(s[2]) for s in buckets] == [1, 2, 3]  # cumulative
        assert all(s[1]["endpoint"] == "predict" for s in buckets)
        (count,) = [s for s in latency["samples"]
                    if s[0].endswith("_count")]
        assert count[2] == "3"
        (total,) = [s for s in latency["samples"]
                    if s[0].endswith("_sum")]
        assert float(total[2]) == pytest.approx(5.55)

    def test_help_text_comes_from_the_catalogue(self):
        text = render_prometheus(self.make_registry().snapshot())
        families = parse_prometheus(text)
        assert families["arcs_serve_requests_total"]["help"]
        assert families["arcs_serve_request_seconds"]["help"]

    def test_render_registry_reports_disabled_state(self):
        assert metrics_mod.active() is None
        assert "disabled" in render_registry()

    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE

    @pytest.mark.parametrize("payload", [
        "# TYPE arcs_x flotogram\n",
        "arcs x 1\n",
        "arcs_x not-a-number\n",
        'arcs_x{endpoint=predict} 1\n',
    ])
    def test_parser_rejects_malformed_payloads(self, payload):
        with pytest.raises(PrometheusParseError):
            parse_prometheus(payload)

    def test_drift_gauge_families_round_trip(self):
        registry = MetricsRegistry()
        for attr, value in (("age", 0.31), ("salary", 0.02),
                            ("joint", 0.12)):
            registry.gauge("serve.drift_psi",
                           labels={"attr": attr, "model": "groupA"},
                           ).set(value)
            registry.gauge("serve.drift_js",
                           labels={"attr": attr, "model": "groupA"},
                           ).set(value / 2)
        registry.gauge("serve.coverage_fraction",
                       labels={"model": "groupA"}).set(0.9)
        registry.gauge("serve.out_of_range",
                       labels={"attr": "age", "model": "groupA"},
                       ).set(0.0)
        families = parse_prometheus(
            render_prometheus(registry.snapshot())
        )
        psi = families["arcs_serve_drift_psi"]
        assert psi["kind"] == "gauge"
        by_attr = {
            labels["attr"]: float(value)
            for _, labels, value in psi["samples"]
            if labels["model"] == "groupA"
        }
        assert by_attr == {"age": pytest.approx(0.31),
                           "salary": pytest.approx(0.02),
                           "joint": pytest.approx(0.12)}
        js = families["arcs_serve_drift_js"]
        assert {labels["attr"] for _, labels, _ in js["samples"]} == \
            {"age", "salary", "joint"}
        coverage = families["arcs_serve_coverage_fraction"]
        assert coverage["samples"] == [(
            "arcs_serve_coverage_fraction", {"model": "groupA"}, "0.9",
        )]
        out_of_range = families["arcs_serve_out_of_range"]
        assert out_of_range["kind"] == "gauge"
        assert float(out_of_range["samples"][0][2]) == 0.0
        # Descriptions come straight from the catalogue.
        assert "Population Stability Index" in psi["help"]

    def test_run_report_to_prometheus(self):
        report = RunReport(
            name="arcs.fit", started_at=0.0, duration_seconds=1.0,
            metrics=self.make_registry().snapshot(),
        )
        families = parse_prometheus(report.to_prometheus())
        assert "arcs_serve_request_seconds" in families
