"""Tests for multi-criterion segmentation from one BinArray."""

import numpy as np
import pytest

import repro
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.schema import Table, categorical, quantitative

FAST = ARCSConfig(
    n_bins_x=25, n_bins_y=25,
    optimizer=OptimizerConfig(max_support_levels=5,
                              max_confidence_levels=5),
    sample_size=800, sample_repeats=3,
)


def three_group_table(n=15_000, seed=8):
    """Three rating groups in disjoint (age, income) stripes."""
    rng = np.random.default_rng(seed)
    age = rng.uniform(0, 90, n)
    income = rng.uniform(0, 90_000, n)
    rating = np.full(n, "bronze", dtype=object)
    rating[(age < 30) & (income >= 60_000)] = "gold"
    rating[(age >= 30) & (age < 60) & (income >= 60_000)] = "silver"
    return Table.from_columns(
        [quantitative("age", 0, 90), quantitative("income", 0, 90_000),
         categorical("rating", ("gold", "silver", "bronze"))],
        {"age": age, "income": income, "rating": rating.tolist()},
    )


class TestFitAll:
    @pytest.fixture(scope="class")
    def results(self):
        table = three_group_table()
        return table, ARCS(FAST).fit_all(table, "age", "income",
                                         "rating")

    def test_one_result_per_occurring_value(self, results):
        _, fitted = results
        assert set(fitted) == {"gold", "silver", "bronze"}

    def test_binner_shared_across_values(self, results):
        """The headline: one binning pass serves every criterion."""
        _, fitted = results
        binners = {id(result.binner) for result in fitted.values()}
        assert len(binners) == 1

    def test_each_segmentation_targets_its_value(self, results):
        _, fitted = results
        for value, result in fitted.items():
            assert result.segmentation.rhs_value == value

    def test_segmentations_land_on_their_stripes(self, results):
        table, fitted = results
        gold = fitted["gold"].segmentation
        assert len(gold) >= 1
        rule = max(gold.rules, key=lambda r: r.support)
        assert rule.x_interval.high <= 35
        assert rule.y_interval.low >= 50_000

    def test_matches_individual_fits(self, results):
        """fit_all must agree with a fresh per-value fit (same config,
        same data, same seed)."""
        table, fitted = results
        solo = ARCS(FAST).fit(table, "age", "income", "rating", "gold")
        assert len(solo.segmentation) == len(fitted["gold"].segmentation)
        assert solo.best_trial.mdl_cost == pytest.approx(
            fitted["gold"].best_trial.mdl_cost
        )

    def test_rejects_single_target_memory(self):
        table = three_group_table(n=1_000)
        config = ARCSConfig(
            single_target_memory=True,
            optimizer=OptimizerConfig(max_support_levels=4,
                                      max_confidence_levels=4),
        )
        with pytest.raises(ValueError, match="single_target_memory"):
            ARCS(config).fit_all(table, "age", "income", "rating")

    def test_absent_value_skipped(self):
        table = three_group_table(n=2_000, seed=9)
        # Declare a domain value no row carries.
        specs = list(table.schema.values())
        specs[-1] = categorical(
            "rating", ("gold", "silver", "bronze", "platinum")
        )
        extended = Table.from_columns(specs, {
            name: table.column(name) for name in table.attribute_names
        })
        fitted = ARCS(FAST).fit_all(extended, "age", "income", "rating")
        assert "platinum" not in fitted


class TestNaNRejection:
    def test_binning_nan_rejected(self):
        table = Table.from_columns(
            [quantitative("x", 0, 1), quantitative("y", 0, 1),
             categorical("g", ("a",))],
            {"x": [0.5, float("nan")], "y": [0.5, 0.5],
             "g": ["a", "a"]},
        )
        from repro.binning import bin_table
        with pytest.raises(ValueError, match="NaN"):
            bin_table(table, "x", "y", "g", 4, 4)
