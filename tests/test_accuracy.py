"""Unit tests for the exact region-overlap error analysis (Figure 9)."""

import pytest

from repro.analysis.accuracy import _Box, exact_region_error, union_area
from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.data.functions import Region, true_regions


def rule_over(x_lo, x_hi, y_lo, y_hi):
    return ClusteredRule(
        "age", "salary", Interval(x_lo, x_hi), Interval(y_lo, y_hi),
        "group", "A", support=0.1, confidence=0.9,
    )


X_RANGE = (20.0, 80.0)
Y_RANGE = (20_000.0, 150_000.0)
SPACE = (X_RANGE[1] - X_RANGE[0]) * (Y_RANGE[1] - Y_RANGE[0])


class TestUnionArea:
    def test_single_box(self):
        assert union_area([_Box(0, 2, 0, 3)]) == 6.0

    def test_disjoint_boxes_add(self):
        boxes = [_Box(0, 1, 0, 1), _Box(5, 7, 5, 6)]
        assert union_area(boxes) == 1.0 + 2.0

    def test_overlap_not_double_counted(self):
        boxes = [_Box(0, 2, 0, 2), _Box(1, 3, 0, 2)]
        assert union_area(boxes) == pytest.approx(6.0)

    def test_contained_box_ignored(self):
        boxes = [_Box(0, 4, 0, 4), _Box(1, 2, 1, 2)]
        assert union_area(boxes) == pytest.approx(16.0)

    def test_empty(self):
        assert union_area([]) == 0.0
        assert union_area([_Box(1, 1, 0, 2)]) == 0.0


class TestExactRegionError:
    def test_perfect_match(self):
        truth = [Region("age", 20, 40, "salary", 50_000, 100_000)]
        seg = Segmentation.from_rules([rule_over(20, 40, 50_000, 100_000)])
        report = exact_region_error(seg, truth, X_RANGE, Y_RANGE)
        assert report.false_positive_area == pytest.approx(0.0)
        assert report.false_negative_area == pytest.approx(0.0)
        assert report.jaccard == pytest.approx(1.0)

    def test_pure_false_positive(self):
        truth = [Region("age", 20, 40, "salary", 50_000, 100_000)]
        seg = Segmentation.from_rules([rule_over(60, 80, 50_000, 100_000)])
        report = exact_region_error(seg, truth, X_RANGE, Y_RANGE)
        expected = 20 * 50_000 / SPACE
        assert report.false_positive_area == pytest.approx(expected)
        assert report.false_negative_area == pytest.approx(expected)
        assert report.jaccard == pytest.approx(0.0)

    def test_partial_overlap(self):
        truth = [Region("age", 20, 40, "salary", 50_000, 100_000)]
        seg = Segmentation.from_rules([rule_over(30, 50, 50_000, 100_000)])
        report = exact_region_error(seg, truth, X_RANGE, Y_RANGE)
        band = 10 * 50_000 / SPACE
        assert report.false_positive_area == pytest.approx(band)
        assert report.false_negative_area == pytest.approx(band)

    def test_undercover_only_false_negative(self):
        truth = [Region("age", 20, 40, "salary", 50_000, 100_000)]
        seg = Segmentation.from_rules([rule_over(25, 35, 50_000, 100_000)])
        report = exact_region_error(seg, truth, X_RANGE, Y_RANGE)
        assert report.false_positive_area == pytest.approx(0.0)
        assert report.false_negative_area > 0

    def test_function2_truth_against_itself(self):
        regions = true_regions(2)
        rules = [
            rule_over(r.x_lo, r.x_hi, r.y_lo, r.y_hi) for r in regions
        ]
        report = exact_region_error(
            Segmentation.from_rules(rules), regions, X_RANGE, Y_RANGE
        )
        assert report.total_error_area == pytest.approx(0.0)
        # Group A is ~38.5% of the space (matches Table 1's ~40%).
        assert report.true_area == pytest.approx(0.385, abs=0.01)

    def test_empty_segmentation(self):
        truth = [Region("age", 20, 40, "salary", 50_000, 100_000)]
        empty = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        report = exact_region_error(empty, truth, X_RANGE, Y_RANGE)
        assert report.false_positive_area == 0.0
        assert report.false_negative_area == pytest.approx(
            report.true_area
        )

    def test_rejects_degenerate_space(self):
        seg = Segmentation(
            rules=(), x_attribute="age", y_attribute="salary",
            rhs_attribute="group", rhs_value="A",
        )
        with pytest.raises(ValueError):
            exact_region_error(seg, [], (1.0, 1.0), Y_RANGE)
