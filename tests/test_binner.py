"""Unit tests for the streaming Binner."""

import numpy as np
import pytest

from repro.binning.binner import Binner, bin_table
from repro.data.schema import Table, categorical, quantitative

SPECS = [
    quantitative("age", 20, 80),
    quantitative("salary", 20_000, 150_000),
    categorical("group", ("A", "other")),
]


def small_table():
    return Table.from_columns(SPECS, {
        "age": [20, 35, 50, 65, 80],
        "salary": [20_000, 60_000, 100_000, 140_000, 150_000],
        "group": ["A", "A", "other", "A", "other"],
    })


class TestFit:
    def test_layouts_come_from_declared_domains(self):
        binner = Binner.fit(small_table(), "age", "salary", "group", 6, 13)
        assert binner.x_layout.low == 20 and binner.x_layout.high == 80
        assert binner.y_layout.low == 20_000
        assert binner.x_layout.n_bins == 6
        assert binner.y_layout.n_bins == 13

    def test_rhs_encoding_from_domain(self):
        binner = Binner.fit(small_table(), "age", "salary", "group", 4, 4)
        assert binner.rhs_encoding.values == ("A", "other")

    def test_rejects_categorical_lhs(self):
        with pytest.raises(ValueError, match="must be quantitative"):
            Binner.fit(small_table(), "group", "salary", "group", 4, 4)

    def test_target_value_enables_single_target_mode(self):
        binner = Binner.fit(
            small_table(), "age", "salary", "group", 4, 4,
            target_value="A",
        )
        assert binner.bin_array.single_target
        assert binner.bin_array.target_code == 0


class TestConsume:
    def test_counts_match_manual_binning(self):
        table = small_table()
        binner = Binner.fit(table, "age", "salary", "group", 6, 13)
        binner.consume(table)
        array = binner.bin_array
        assert array.n_total == 5
        # age 20 -> bin 0; salary 20k -> bin 0; group A -> code 0.
        assert array.count_grid(0)[0, 0] == 1
        # age 80 -> last bin; salary 150k -> last bin; group other.
        assert array.count_grid(1)[5, 12] == 1

    def test_chunked_equals_single_pass(self):
        table = small_table()
        whole = Binner.fit(table, "age", "salary", "group", 6, 13)
        whole.consume(table)
        chunked = Binner.fit(table, "age", "salary", "group", 6, 13)
        chunked.consume_all(table.iter_chunks(2))
        assert np.array_equal(
            whole.bin_array.counts, chunked.bin_array.counts
        )
        assert np.array_equal(
            whole.bin_array.totals, chunked.bin_array.totals
        )

    def test_assign_points(self):
        table = small_table()
        binner = Binner.fit(table, "age", "salary", "group", 6, 13)
        x_bins, y_bins = binner.assign_points(table)
        assert len(x_bins) == len(table)
        assert x_bins[0] == 0 and x_bins[-1] == 5


class TestBinTable:
    def test_one_call_pipeline(self):
        binner = bin_table(
            small_table(), "age", "salary", "group",
            n_bins_x=6, n_bins_y=13, chunk_rows=2,
        )
        assert binner.bin_array.n_total == 5

    def test_defaults_are_paper_defaults(self, f2_clean_table):
        binner = bin_table(f2_clean_table, "age", "salary", "group")
        assert binner.bin_array.n_x == 50
        assert binner.bin_array.n_y == 50

    def test_total_counts_partition(self, f2_binner):
        array = f2_binner.bin_array
        assert array.counts.sum() == array.n_total
        assert array.totals.sum() == array.n_total

    def test_equi_depth_strategy(self, f2_clean_table):
        binner = bin_table(
            f2_clean_table, "age", "salary", "group",
            n_bins_x=10, n_bins_y=10, strategy="equi-depth",
        )
        counts_per_x = binner.bin_array.totals.sum(axis=1)
        assert counts_per_x.min() > 0.5 * counts_per_x.mean()
