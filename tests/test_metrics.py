"""Unit tests for the shared error metrics."""

import numpy as np
import pytest

from repro.baselines.metrics import (
    classification_error,
    error_rate,
    segmentation_error_counts,
)
from repro.data.schema import Table, categorical, quantitative


class TestSegmentationErrorCounts:
    def test_confusion_quadrants(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        fp, fn = segmentation_error_counts(predicted, actual)
        assert (fp, fn) == (1, 1)

    def test_perfect(self):
        mask = np.array([True, False])
        assert segmentation_error_counts(mask, mask) == (0, 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            segmentation_error_counts(
                np.array([True]), np.array([True, False])
            )


class TestErrorRate:
    def test_rate(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        assert error_rate(predicted, actual) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_rate(np.array([], dtype=bool), np.array([], dtype=bool))


class TestClassificationError:
    def test_one_vs_rest_projection(self):
        table = Table.from_columns(
            [quantitative("x"), categorical("group", ("A", "B", "C"))],
            {"x": [1, 2, 3], "group": ["A", "B", "C"]},
        )
        predicted = np.array(["A", "A", "C"], dtype=object)
        # vs target A: row0 correct, row1 FP, row2 projected correct
        # (C vs C both map to "not A").
        assert classification_error(
            predicted, table, "group", "A"
        ) == pytest.approx(1 / 3)

    def test_matches_error_rate_for_binary(self, f2_clean_table):
        sample = f2_clean_table.head(500)
        predicted = np.array(["A"] * 500, dtype=object)
        via_classifier = classification_error(
            predicted, sample, "group", "A"
        )
        actual = np.asarray(
            [label == "A" for label in sample.column("group")]
        )
        assert via_classifier == pytest.approx(
            error_rate(np.ones(500, dtype=bool), actual)
        )
