"""Tests for ``tools.analyze`` — the unified static-analysis framework.

Each checker is exercised against fixture files under
``tests/fixtures/analyze/``: at least one file where the checker must
fire and one where it must stay silent.  The obs-catalogue fixtures are
two miniature projects (catalogue + emitters + docs), one drifted in
every direction and one fully in sync.  A subprocess test asserts the
analyzer's real contract: ``python -m tools.analyze --all`` exits 0 on
this repository.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from tools.analyze import (
    Analysis,
    AnalyzeConfig,
    CheckerConfig,
    checker_classes,
    load_config,
)
from tools.analyze.checkers import (
    ALL_CHECKERS,
    ConcurrencyChecker,
    DeterminismChecker,
    ExceptionPolicyChecker,
    ForkSafetyChecker,
    LockOrderChecker,
    NoPrintChecker,
    NoWallTimeChecker,
    ObsCatalogueChecker,
    ResourceLifetimeChecker,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analyze"


def run_single(checker_cls, filename=None, *, options=None,
               roots=("cases",), repo_root=FIXTURES, paths=...):
    """Run one checker over fixture files and return the result."""
    config = AnalyzeConfig(repo_root=repo_root, roots=tuple(roots))
    config.checkers[checker_cls.name] = CheckerConfig(
        name=checker_cls.name, roots=tuple(roots),
        options=dict(options or {}),
    )
    if paths is ...:
        paths = ([repo_root / "cases" / filename]
                 if filename is not None else None)
    return Analysis(config, [checker_cls]).run(paths)


# ----------------------------------------------------------------------
# Per-checker fixtures: fire on the bad file, stay silent on the clean
# ----------------------------------------------------------------------
def test_no_print_fires():
    result = run_single(NoPrintChecker, "noprint_bad.py")
    assert [f.checker for f in result.findings] == ["no-print"]
    assert "bare print()" in result.findings[0].message


def test_no_print_clean():
    assert run_single(NoPrintChecker, "noprint_clean.py").ok


def test_no_wall_time_fires_on_every_spelling():
    result = run_single(NoWallTimeChecker, "walltime_bad.py")
    assert len(result.findings) == 2
    assert all(f.checker == "no-wall-time" for f in result.findings)


def test_no_wall_time_clean_includes_waiver():
    assert run_single(NoWallTimeChecker, "walltime_clean.py").ok


def test_determinism_fires():
    result = run_single(DeterminismChecker, "determinism_bad.py")
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 4
    assert "stdlib 'random' imported" in messages
    assert "random.shuffle" in messages
    assert "numpy.random.rand" in messages
    assert "without a seed" in messages


def test_determinism_clean():
    assert run_single(DeterminismChecker, "determinism_clean.py").ok


def test_exception_policy_fires():
    result = run_single(
        ExceptionPolicyChecker, "exceptions_bad.py",
        options={"raise-roots": ["cases"]},
    )
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 4
    assert "bare 'except:'" in messages
    assert "silently swallows" in messages
    assert "neither re-raises nor logs" in messages
    assert "raises builtin KeyError" in messages


def test_exception_policy_clean():
    result = run_single(
        ExceptionPolicyChecker, "exceptions_clean.py",
        options={"raise-roots": ["cases"]},
    )
    assert result.ok


def test_concurrency_fires_on_each_rule():
    result = run_single(ConcurrencyChecker, "concurrency_bad.py")
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 6
    assert "written under 'with self._lock:' elsewhere" in messages
    assert "non-atomic read-modify-write" in messages
    assert "self.snapshot[...] mutated in place" in messages
    assert "self.snapshot.update(...)" in messages
    assert "published to self" in messages
    assert "guards nothing" in messages


def test_concurrency_clean():
    assert run_single(ConcurrencyChecker, "concurrency_clean.py").ok


def test_suppression_comment_drops_findings():
    assert run_single(NoPrintChecker, "suppressed.py").ok


def test_concurrency_primitive_and_locked_only_shapes_are_clean():
    """Escaping per-call primitives, primitive-typed attributes, and
    private methods called only under the lock must not fire."""
    assert run_single(ConcurrencyChecker, "concurrency_clean.py").ok


def test_concurrency_external_sync_waives_class_rules():
    result = run_single(
        ConcurrencyChecker, "concurrency_bad.py",
        options={"external-sync": ["BadService"]},
    )
    # Class-level shared-state rules are waived; the per-call
    # primitive rule is method-local and still applies.
    assert len(result.findings) == 1
    assert "guards nothing" in result.findings[0].message


# ----------------------------------------------------------------------
# Interprocedural checkers: lock-order, fork-safety, resource-lifetime
# ----------------------------------------------------------------------
def run_graph(checker_cls, filename, *, callgraph=True, paths=None):
    """Full run (``paths=None`` => ``complete=True``) over one fixture
    file, with the call-graph layer on unless disabled."""
    root = f"cases/{filename}"
    config = AnalyzeConfig(repo_root=FIXTURES, roots=(root,))
    config.checkers[checker_cls.name] = CheckerConfig(
        name=checker_cls.name, roots=(root,),
    )
    return Analysis(config, [checker_cls],
                    callgraph=callgraph).run(paths)


def test_lock_order_fires_on_each_rule():
    result = run_graph(LockOrderChecker, "lockorder_bad.py")
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 4
    assert sorted(f.line for f in result.findings) == [31, 49, 74, 81]
    # direct two-lock cycle inside one class
    assert "_LOCK_A -> lockorder_bad._LOCK_B" in messages
    # interprocedural cycle discovered through resolved calls
    assert "Journal.append() calls Index.insert()" in messages
    # fork and blocking join under a held lock
    assert "process-start while holding Pool._lock" in messages
    assert "blocking join() while holding Pool._lock" in messages


def test_lock_order_clean():
    assert run_graph(LockOrderChecker, "lockorder_clean.py").ok


def test_lock_order_silent_without_callgraph():
    result = run_graph(LockOrderChecker, "lockorder_bad.py",
                       callgraph=False)
    assert result.ok


def test_fork_safety_fires_on_each_rule():
    result = run_graph(ForkSafetyChecker, "forksafety_bad.py")
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 4
    assert all(f.line == 49 for f in result.findings)
    assert "re-acquires fork-inherited lock(s)" in messages     # rule B
    assert "closes/flushes module global" in messages           # rule C
    assert "passed into the child via Process args" in messages  # rule D
    assert "also starts threads" in messages                    # rule A


def test_fork_safety_clean():
    assert run_graph(ForkSafetyChecker, "forksafety_clean.py").ok


def test_fork_safety_partial_scan_keeps_only_local_rules():
    """Absence-based rules (A-C) need the whole-tree pass; a partial
    scan (pre-commit shape) keeps only the handle-in-args rule."""
    result = run_graph(
        ForkSafetyChecker, "forksafety_bad.py",
        paths=[FIXTURES / "cases" / "forksafety_bad.py"],
    )
    assert not result.complete
    assert len(result.findings) == 1
    assert "Process args" in result.findings[0].message


def test_resource_lifetime_fires_on_each_rule():
    result = run_single(ResourceLifetimeChecker, "resource_bad.py")
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 5
    assert sorted(f.line for f in result.findings) == [
        24, 36, 44, 49, 55,
    ]
    assert "not close()d on every path" in messages
    assert "close()d again" in messages
    assert "closed while views over its buffer escape" in messages
    assert "never join()ed on some path" in messages
    assert "socket 'sock'" in messages


def test_resource_lifetime_clean():
    assert run_single(ResourceLifetimeChecker, "resource_clean.py").ok


# ----------------------------------------------------------------------
# obs-catalogue: cross-file diff, partial runs, generator mode
# ----------------------------------------------------------------------
def obs_options(project):
    return {
        "catalogue": f"{project}/catalogue.py",
        "docs": f"{project}/observability.md",
    }


def test_obs_catalogue_reports_all_drift():
    result = run_single(
        ObsCatalogueChecker, roots=("obs_bad",),
        options=obs_options("obs_bad"), paths=None,
    )
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 4
    assert "undeclared counter metric name 'demo.unknown'" in messages
    assert "emitted as a gauge but declared as a counter" in messages
    assert "declares 'demo.orphan' but no instrumented code" in messages
    assert "metric table out of sync" in messages


def test_obs_catalogue_partial_run_skips_orphan_and_docs_checks():
    result = run_single(
        ObsCatalogueChecker, roots=("obs_bad",),
        options=obs_options("obs_bad"),
        paths=[FIXTURES / "obs_bad" / "emitters.py"],
    )
    assert not result.complete
    messages = " | ".join(f.message for f in result.findings)
    assert len(result.findings) == 2
    assert "demo.orphan" not in messages
    assert "out of sync" not in messages


def test_obs_catalogue_clean_project_passes():
    result = run_single(
        ObsCatalogueChecker, roots=("obs_clean",),
        options=obs_options("obs_clean"), paths=None,
    )
    assert result.ok, [f.render() for f in result.findings]


def run_obs_fix(tmp_root):
    """One analyze-then-fix cycle over ``tmp_root / proj``."""
    config = AnalyzeConfig(repo_root=tmp_root, roots=("proj",))
    config.checkers["obs-catalogue"] = CheckerConfig(
        name="obs-catalogue", roots=("proj",),
        options=obs_options("proj"),
    )
    analysis = Analysis(config, [ObsCatalogueChecker])
    result = analysis.run(None)
    changed = analysis.fix(result)
    rerun = Analysis(config, [ObsCatalogueChecker]).run(None)
    return result, changed, rerun


def test_obs_catalogue_fix_preserves_descriptions(tmp_path):
    project = tmp_path / "proj"
    shutil.copytree(FIXTURES / "obs_clean", project)
    emitters = project / "emitters.py"
    emitters.write_text(
        emitters.read_text()
        + "\n\ndef extra():\n    metrics.inc(\"demo.fresh\")\n"
    )
    result, changed, rerun = run_obs_fix(tmp_path)
    assert [f.message for f in result.findings
            if "demo.fresh" in f.message]
    assert "proj/catalogue.py" in changed
    assert rerun.ok, [f.render() for f in rerun.findings]
    catalogue = (project / "catalogue.py").read_text()
    assert "'demo.fresh'" in catalogue
    assert "TODO: describe" in catalogue          # the new name
    assert "'requests served'" in catalogue       # the kept description
    docs = (project / "observability.md").read_text()
    assert "`demo.fresh`" in docs


def test_obs_catalogue_fix_creates_missing_catalogue(tmp_path):
    project = tmp_path / "proj"
    shutil.copytree(FIXTURES / "obs_clean", project)
    (project / "catalogue.py").unlink()
    result, changed, rerun = run_obs_fix(tmp_path)
    assert "catalogue missing" in result.findings[0].message
    assert "proj/catalogue.py" in changed
    assert rerun.ok, [f.render() for f in rerun.findings]
    catalogue = (project / "catalogue.py").read_text()
    for name in ("demo.requests", "demo.latency_seconds", "demo.run"):
        assert f"'{name}'" in catalogue


# ----------------------------------------------------------------------
# Framework: config, registry, report shape, CLI
# ----------------------------------------------------------------------
def test_load_config_reads_pyproject():
    config = load_config(REPO_ROOT)
    no_print = config.checker("no-print")
    assert "src/repro/cli.py" in no_print.allow
    determinism = config.checker("determinism")
    assert all(root.startswith("src/repro/")
               for root in determinism.roots)
    assert "src/repro/serve" not in determinism.roots


def test_unknown_checker_name_rejected():
    with pytest.raises(ValueError, match="nope"):
        checker_classes(["nope"])


def test_report_json_shape():
    result = run_single(NoPrintChecker, "noprint_bad.py")
    payload = json.loads(result.to_json())
    assert payload["format"] == "arcs-analyze-report"
    assert payload["version"] == 1
    assert payload["status"] == "fail"
    assert payload["files_scanned"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {
        "path", "line", "col", "checker", "message", "fixable",
    }
    assert finding["path"] == "cases/noprint_bad.py"


def test_sarif_report_shape():
    result = run_single(NoPrintChecker, "noprint_bad.py")
    sarif = result.to_sarif()
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "arcs-analyze"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "no-print",
    ]
    (res,) = run["results"]
    assert res["ruleId"] == "no-print"
    assert res["ruleIndex"] == 0
    location = res["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "cases/noprint_bad.py"
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert location["region"]["startLine"] == 5


def test_cli_sarif_output_file(tmp_path):
    """``--format sarif --output`` writes the log and keeps the human
    render on stdout - the CI artifact shape."""
    out = tmp_path / "analyze.sarif"
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "--all",
         "--format", "sarif", "--output", str(out)],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
    sarif = json.loads(out.read_text())
    assert sarif["version"] == "2.1.0"
    rules = sarif["runs"][0]["tool"]["driver"]["rules"]
    assert {r["id"] for r in rules} == {
        cls.name for cls in ALL_CHECKERS
    }
    assert sarif["runs"][0]["results"] == []


def test_cli_list_checkers(capsys):
    from tools.analyze.__main__ import main
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for cls in ALL_CHECKERS:
        assert cls.name in out


def test_cli_unknown_select_is_usage_error(capsys):
    from tools.analyze.__main__ import main
    assert main(["--select", "nope"]) == 2
    assert "nope" in capsys.readouterr().err


def test_real_tree_is_clean():
    """The acceptance contract: the analyzer passes on this repository."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "--all",
         "--format", "json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["status"] == "pass"
    assert payload["complete"] is True
    assert payload["files_scanned"] > 0
    assert set(payload["checkers"]) == {
        cls.name for cls in ALL_CHECKERS
    }
