"""Tests for the drift divergences and traffic windows (repro.obs.drift)."""

import numpy as np
import pytest

from repro.obs.drift import (
    DEFAULT_PSI_ALERT,
    PSI_EPSILON,
    TrafficWindow,
    js_divergence,
    psi,
)


class TestPSI:
    def test_identical_distributions_score_zero(self):
        counts = np.array([5, 10, 20, 5])
        assert psi(counts, counts) == 0.0
        assert psi(counts, counts * 7) == 0.0  # scale-invariant

    def test_known_value(self):
        # Two bins, p = (0.5, 0.5), q = (0.9, 0.1):
        # PSI = (0.9-0.5)ln(0.9/0.5) + (0.1-0.5)ln(0.1/0.5)
        expected = (0.4 * np.log(0.9 / 0.5)
                    + (-0.4) * np.log(0.1 / 0.5))
        assert psi([50, 50], [90, 10]) == pytest.approx(expected)

    def test_empty_bins_are_clipped_not_infinite(self):
        value = psi([10, 0], [0, 10])
        assert np.isfinite(value)
        # The clip floor bounds the score: each bin contributes at most
        # (1 - eps) * ln(1 / eps).
        bound = 2 * (1.0 - PSI_EPSILON) * np.log(1.0 / PSI_EPSILON)
        assert 0.0 < value <= bound

    def test_symmetric_in_magnitude_of_shift(self):
        # PSI is symmetric: swapping p and q gives the same score.
        assert psi([70, 30], [30, 70]) == psi([30, 70], [70, 30])

    def test_accepts_2d_grids(self):
        grid = np.arange(12).reshape(3, 4)
        assert psi(grid, grid) == 0.0
        shifted = grid[::-1].copy()
        assert psi(grid, shifted) == psi(grid.ravel(), shifted.ravel())

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="no bins"):
            psi([], [1])
        with pytest.raises(ValueError, match="negative"):
            psi([1, -1], [1, 1])
        with pytest.raises(ValueError, match="empty"):
            psi([0, 0], [1, 1])
        with pytest.raises(ValueError, match="empty"):
            psi([1, 1], [0, 0])
        with pytest.raises(ValueError, match="different bin counts"):
            psi([1, 1, 1], [1, 1])

    def test_alert_threshold_is_the_folklore_level(self):
        assert DEFAULT_PSI_ALERT == 0.2


class TestJSDivergence:
    def test_identical_distributions_score_zero(self):
        counts = np.array([3, 1, 4, 1, 5])
        assert js_divergence(counts, counts) == 0.0

    def test_disjoint_distributions_hit_the_upper_bound(self):
        # Disjoint supports give exactly 1 bit; no epsilon distortion.
        assert js_divergence([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_bounded_and_symmetric(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            p = rng.integers(0, 50, 8)
            q = rng.integers(0, 50, 8)
            if p.sum() == 0 or q.sum() == 0:
                continue
            forward = js_divergence(p, q)
            assert 0.0 <= forward <= 1.0
            assert forward == pytest.approx(js_divergence(q, p))

    def test_zero_bins_contribute_zero_not_nan(self):
        value = js_divergence([10, 0, 5], [10, 5, 0])
        assert np.isfinite(value)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="empty"):
            js_divergence([0], [1])
        with pytest.raises(ValueError, match="different bin counts"):
            js_divergence([1, 1], [1])


class TestTrafficWindow:
    def test_empty_window(self):
        window = TrafficWindow(4, 3, 2)
        assert window.points == 0
        assert window.requests == 0
        assert window.fallback_points == 0
        assert window.coverage_fraction is None
        assert window.has_grid
        assert window.totals.shape == (4, 3)

    def test_accumulates_bins_rules_and_range_escapes(self):
        window = TrafficWindow(4, 3, 2)
        window.add(np.array([0, 1, 1, 3]), np.array([0, 2, 2, 1]),
                   np.array([0, 1, -1, -1]), out_of_range_x=1,
                   out_of_range_y=0)
        assert window.requests == 1
        assert window.points == 4
        assert window.x_counts.tolist() == [1, 2, 0, 1]
        assert window.y_counts.tolist() == [1, 1, 2]
        assert window.totals[1, 2] == 2
        assert window.totals.sum() == 4
        assert window.rule_hits.tolist() == [2, 1, 1]
        assert window.fallback_points == 2
        assert window.coverage_fraction == pytest.approx(0.5)
        assert window.out_of_range_x == 1

    def test_rule_indices_clip_into_the_fallback_slot(self):
        # Indices past the rule count (stale scorer) clip to the last
        # slot rather than raising inside the serving path.
        window = TrafficWindow(0, 0, 2)
        window.add(None, None, np.array([-1, 0, 1, 99]))
        assert window.rule_hits.tolist() == [1, 1, 2]

    def test_gridless_window_tracks_coverage_only(self):
        window = TrafficWindow(0, 0, 3)
        assert not window.has_grid
        window.add(None, None, np.array([2, -1]))
        assert window.points == 2
        assert window.coverage_fraction == pytest.approx(0.5)
        assert window.x_counts is None

    def test_copy_is_independent(self):
        window = TrafficWindow(2, 2, 1, opened=5.0)
        window.add(np.array([0]), np.array([1]), np.array([0]))
        clone = window.copy()
        window.add(np.array([1]), np.array([1]), np.array([-1]))
        assert clone.points == 1
        assert clone.opened == 5.0
        assert clone.totals.sum() == 1
        assert window.points == 2

    def test_merged_sums_compatible_windows(self):
        first = TrafficWindow(2, 2, 1, opened=10.0)
        first.add(np.array([0]), np.array([0]), np.array([0]))
        second = TrafficWindow(2, 2, 1, opened=3.0)
        second.add(np.array([1, 1]), np.array([0, 1]),
                   np.array([-1, 0]), out_of_range_x=1)
        merged = TrafficWindow.merged([first, second])
        assert merged.points == 3
        assert merged.requests == 2
        assert merged.opened == 3.0  # earliest open time wins
        assert merged.rule_hits.tolist() == [1, 2]
        assert merged.totals.sum() == 3
        assert merged.out_of_range_x == 1
        # Merging never mutates the inputs.
        assert first.points == 1 and second.points == 2

    def test_merged_rejects_mismatched_grids(self):
        with pytest.raises(ValueError, match="different grids"):
            TrafficWindow.merged(
                [TrafficWindow(2, 2, 1), TrafficWindow(3, 2, 1)]
            )
        with pytest.raises(ValueError, match="zero windows"):
            TrafficWindow.merged([])
