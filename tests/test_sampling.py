"""Unit tests for the verifier's sampling utilities."""

import numpy as np
import pytest

from repro.data.sampling import (
    mean_and_stderr,
    repeated_k_of_n,
    sample_indices,
)


class TestSampleIndices:
    def test_distinct_and_in_range(self, fresh_rng):
        indices = sample_indices(100, 30, fresh_rng)
        assert len(indices) == 30
        assert len(set(indices.tolist())) == 30
        assert indices.min() >= 0 and indices.max() < 100

    def test_full_sample(self, fresh_rng):
        indices = sample_indices(10, 10, fresh_rng)
        assert sorted(indices.tolist()) == list(range(10))

    @pytest.mark.parametrize("k", [0, 11])
    def test_rejects_bad_k(self, k, fresh_rng):
        with pytest.raises(ValueError):
            sample_indices(10, k, fresh_rng)


class TestRepeatedKOfN:
    def test_yields_requested_repeats(self, fresh_rng):
        samples = list(repeated_k_of_n(50, 10, 7, fresh_rng))
        assert len(samples) == 7
        assert all(len(sample) == 10 for sample in samples)

    def test_samples_are_independent_draws(self, fresh_rng):
        samples = list(repeated_k_of_n(1000, 100, 2, fresh_rng))
        # Two independent 100-of-1000 samples almost surely differ.
        assert sorted(samples[0].tolist()) != sorted(samples[1].tolist())

    def test_rejects_nonpositive_repeats(self, fresh_rng):
        with pytest.raises(ValueError):
            list(repeated_k_of_n(10, 5, 0, fresh_rng))


class TestMeanAndStderr:
    def test_single_value(self):
        mean, stderr = mean_and_stderr([0.25])
        assert mean == 0.25
        assert stderr == 0.0

    def test_known_values(self):
        mean, stderr = mean_and_stderr([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert stderr == pytest.approx(1.0 / np.sqrt(3))

    def test_constant_values_have_zero_stderr(self):
        mean, stderr = mean_and_stderr([0.5] * 10)
        assert mean == 0.5
        assert stderr == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_and_stderr([])

    def test_accepts_generator(self):
        mean, _ = mean_and_stderr(x / 10 for x in range(5))
        assert mean == pytest.approx(0.2)
