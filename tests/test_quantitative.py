"""Unit tests for the Srikant-Agrawal quantitative rule miner."""

import numpy as np
import pytest

from repro.data.schema import Table, categorical, quantitative
from repro.mining.quantitative import (
    QuantitativeMiner,
    QuantRange,
    QuantRule,
)


def band_table(n=8_000, seed=0):
    """Group A is one salary band crossed with one age band."""
    rng = np.random.default_rng(seed)
    age = rng.uniform(0, 100, n)
    salary = rng.uniform(0, 100, n)
    in_region = (age >= 20) & (age < 50) & (salary >= 40) & (salary < 70)
    labels = np.where(in_region, "A", "other")
    return Table.from_columns(
        [quantitative("age", 0, 100), quantitative("salary", 0, 100),
         categorical("group", ("A", "other"))],
        {"age": age, "salary": salary, "group": labels.tolist()},
    )


@pytest.fixture(scope="module")
def miner():
    return QuantitativeMiner(
        band_table(), ["age", "salary"], "group", n_bins=10
    )


class TestQuantRange:
    def test_n_bins(self):
        assert QuantRange("age", 2, 4, 20.0, 50.0).n_bins == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QuantRange("age", 3, 2, 30.0, 20.0)

    def test_str(self):
        assert str(QuantRange("age", 0, 1, 0.0, 20.0)) == "0 <= age < 20"


class TestCounting:
    def test_supports_are_exact(self, miner):
        """Every reported rule support must match a direct count."""
        table = miner.table
        rules = miner.mine("A", min_support=0.02, min_confidence=0.5,
                           min_interest=None)
        assert rules
        labels = table.column("group")
        for rule in rules[:10]:
            inside = np.ones(len(table), dtype=bool)
            for quant_range in rule.ranges:
                column = table.column(quant_range.attribute)
                codes = miner._codes[quant_range.attribute]
                inside &= (
                    (codes >= quant_range.first_bin)
                    & (codes <= quant_range.last_bin)
                )
            hits = int(np.sum(inside & (labels == "A")))
            assert rule.support == pytest.approx(hits / len(table))
            assert rule.confidence == pytest.approx(
                hits / int(inside.sum())
            )

    def test_thresholds_respected(self, miner):
        rules = miner.mine("A", min_support=0.05, min_confidence=0.8,
                           min_interest=None)
        for rule in rules:
            assert rule.support >= 0.05
            assert rule.confidence >= 0.8

    def test_region_recovered_by_some_two_attribute_rule(self, miner):
        rules = miner.mine("A", min_support=0.03, min_confidence=0.8,
                           min_interest=None)
        pair_rules = [rule for rule in rules if len(rule.ranges) == 2]
        assert pair_rules
        best = pair_rules[0]
        bounds = {r.attribute: (r.low, r.high) for r in best.ranges}
        # Equi-depth edges on uniform data land close to the quantiles.
        assert abs(bounds["age"][0] - 20) < 12
        assert abs(bounds["age"][1] - 50) < 12
        assert abs(bounds["salary"][0] - 40) < 12
        assert abs(bounds["salary"][1] - 70) < 12


class TestInterestMeasure:
    def test_interest_prunes_uninformative_rules(self, miner):
        """A range rule whose confidence matches the base rate is not
        'greater than expected' and must be pruned."""
        loose = miner.mine("A", min_support=0.005, min_confidence=0.0,
                           min_interest=None)
        pruned = miner.mine("A", min_support=0.005, min_confidence=0.0,
                            min_interest=1.5)
        assert len(pruned) < len(loose)
        for rule in pruned:
            assert rule.interest >= 1.5

    def test_informative_rule_has_high_interest(self, miner):
        rules = miner.mine("A", min_support=0.05, min_confidence=0.8,
                           min_interest=None)
        # Inside the planted region confidence ~1 vs base rate ~0.09:
        # interest far above 1.
        assert max(rule.interest for rule in rules) > 3.0


class TestRuleExplosion:
    def test_many_more_rules_than_arcs_clusters(self, f2_table):
        """The paper's motivation: [22]-style mining yields a flood of
        overlapping range rules where ARCS yields a handful."""
        sample = f2_table.head(10_000)
        miner = QuantitativeMiner(
            sample, ["age", "salary"], "group", n_bins=12
        )
        rules = miner.mine("A", min_support=0.01, min_confidence=0.6,
                           min_interest=None)
        assert len(rules) > 50  # vs ARCS's 3 clusters


class TestValidation:
    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            QuantitativeMiner(band_table(100), ["age"], "group",
                              n_bins=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            QuantitativeMiner(band_table(100), ["age"], "group",
                              max_range_fraction=0.0)

    def test_rejects_bad_thresholds(self, miner):
        with pytest.raises(ValueError):
            miner.mine("A", min_support=-0.1, min_confidence=0.5)
        with pytest.raises(ValueError):
            miner.mine("A", min_support=0.1, min_confidence=1.5)

    def test_max_range_fraction_limits_span(self):
        miner = QuantitativeMiner(
            band_table(2_000), ["age"], "group",
            n_bins=10, max_range_fraction=0.3,
        )
        rules = miner.mine("A", 0.0, 0.0, min_interest=None)
        for rule in rules:
            for quant_range in rule.ranges:
                assert quant_range.n_bins <= 3
