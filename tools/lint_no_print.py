#!/usr/bin/env python
"""Lint: no bare print() calls inside the library.

The library communicates through logging (module loggers, NullHandler
on the package root) and return values; printing belongs to the
designated emitters only.  This walks the AST — a raw grep would
false-positive on docstring examples — and fails listing every
offending ``file:line``.

Allowed emitters:

* ``repro/cli.py`` — the command-line surface;
* ``repro/viz/`` — ASCII rendering exists to be printed.

Usage: ``python tools/lint_no_print.py [src/repro]``
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ALLOWED = ("cli.py", "viz/")


def print_calls(path: Path) -> list[int]:
    """Line numbers of print() calls in a Python source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    failures = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if any(relative == allow or relative.startswith(allow)
               for allow in ALLOWED):
            continue
        for lineno in print_calls(path):
            failures.append(f"{path}:{lineno}")
    if failures:
        print("bare print() calls in library code "
              "(use logging instead):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"no bare print() calls under {root} "
          f"(emitters {', '.join(ALLOWED)} exempt)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
