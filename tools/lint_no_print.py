#!/usr/bin/env python
"""Lint: no bare print() calls outside the designated emitters.

The library communicates through logging (module loggers, NullHandler
on the package root) and return values; printing belongs to the
designated emitters only.  This walks the AST — a raw grep would
false-positive on docstring examples — and fails listing every
offending ``file:line``.

Allowed emitters, per scanned root:

* ``src/repro`` — ``cli.py`` (the command-line surface) and ``viz/``
  (ASCII rendering exists to be printed);
* ``benchmarks`` — ``conftest.py`` (the shared :func:`emit` result
  writer) and ``perf_budget.py`` (a standalone CLI tool).  Benchmark
  *modules* must report through ``emit`` so every result also lands in
  ``benchmarks/results/``.

``src/repro/serve`` is deliberately **not** exempt: a serving process
must emit through logging and ``repro.obs`` (request logs go to the
``repro.serve.service`` logger), never to stdout.  CI scans it as its
own root so the rule stays enforced even if the ``repro`` allowlist
grows.

Usage: ``python tools/lint_no_print.py [src/repro benchmarks ...]``
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Allowlisted path prefixes, keyed by the scanned root's basename.
ALLOWED = {
    "repro": ("cli.py", "viz/"),
    "benchmarks": ("conftest.py", "perf_budget.py"),
}


def print_calls(path: Path) -> list[int]:
    """Line numbers of print() calls in a Python source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def scan_root(root: Path) -> list[str]:
    """Offending ``file:line`` entries under one root."""
    allowed = ALLOWED.get(root.name, ())
    failures = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if any(relative == allow or relative.startswith(allow)
               for allow in allowed):
            continue
        for lineno in print_calls(path):
            failures.append(f"{path}:{lineno}")
    return failures


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv[1:]] or [Path("src/repro")]
    failures = []
    for root in roots:
        failures.extend(scan_root(root))
    if failures:
        print("bare print() calls outside the designated emitters "
              "(use logging instead):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    for root in roots:
        exempt = ", ".join(ALLOWED.get(root.name, ())) or "none"
        print(f"no bare print() calls under {root} (emitters {exempt} "
              f"exempt)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
