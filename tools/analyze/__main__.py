"""Command-line front end: ``python -m tools.analyze``.

Exit status: 0 clean, 1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.analyze import (
    Analysis,
    checker_classes,
    load_config,
)
from tools.analyze.checkers import ALL_CHECKERS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description=("Unified AST static analysis for the ARCS "
                     "repository (docs/static_analysis.md)."),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files to scan (pre-commit passes changed files); "
             "default: every configured root",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="scan every configured root (explicit form of the "
             "no-paths default; overrides any listed paths)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="NAME",
        help="run only the named checker (repeatable, or "
             "comma-separated)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default text; sarif emits a SARIF 2.1.0 "
             "log for code-scanning upload)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the report to PATH instead of stdout (stdout then "
             "gets the human-readable summary)",
    )
    parser.add_argument(
        "--no-callgraph", action="store_true",
        help="skip the whole-repo call-graph pass; interprocedural "
             "checkers (lock-order, fork-safety) are silently skipped "
             "- the fast mode pre-commit uses on staged files",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (regenerates the obs catalogue "
             "and docs table), then re-check",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="list the registered checkers and exit",
    )
    parser.add_argument(
        "--pyproject", type=Path, default=None,
        help="config file (default: pyproject.toml at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.list_checkers:
        width = max(len(cls.name) for cls in ALL_CHECKERS)
        for cls in ALL_CHECKERS:
            print(f"{cls.name:<{width}}  {cls.description}")
        return 0

    select = None
    if args.select:
        select = [name.strip()
                  for entry in args.select
                  for name in entry.split(",") if name.strip()]
    repo_root = Path(__file__).resolve().parent.parent.parent
    try:
        config = load_config(repo_root, args.pyproject)
        classes = checker_classes(select)
    except ValueError as error:
        print(f"arcs-analyze: {error}", file=sys.stderr)
        return 2

    paths = None if (args.all or not args.paths) else list(args.paths)
    analysis = Analysis(config, classes,
                        callgraph=not args.no_callgraph)
    result = analysis.run(paths)

    if args.fix and not result.ok:
        changed = analysis.fix(result)
        if changed:
            print("arcs-analyze: rewrote "
                  + ", ".join(sorted(set(changed))), file=sys.stderr)
            # Re-run so the report reflects the fixed tree.
            analysis = Analysis(config, checker_classes(select),
                                callgraph=not args.no_callgraph)
            result = analysis.run(paths)

    if args.format == "json":
        report = result.to_json()
    elif args.format == "sarif":
        report = result.to_sarif_json()
    else:
        report = result.render()
    if args.output is not None:
        args.output.write_text(report + "\n")
        print(result.render())
    else:
        print(report)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
