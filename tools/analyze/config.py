"""Configuration for ``arcs-analyze``: the ``[tool.arcs-analyze]`` table.

Checkers are configured in ``pyproject.toml``::

    [tool.arcs-analyze]
    roots = ["src/repro", "benchmarks"]        # default scan roots

    [tool.arcs-analyze.no-print]
    allow = ["src/repro/cli.py", "src/repro/viz/"]

    [tool.arcs-analyze.determinism]
    roots = ["src/repro/core", "src/repro/data"]

Each checker subtable accepts:

* ``roots`` — path prefixes (repo-relative, POSIX) the checker scans;
  defaults to the global ``roots``;
* ``allow`` — path prefixes exempt from the checker (a file matches if
  its repo-relative path equals the entry or starts with it);
* ``enabled`` — ``false`` disables the checker entirely;
* any further keys — checker-specific options, passed through verbatim
  (e.g. ``catalogue`` for ``obs-catalogue``).

Parsing uses :mod:`tomllib` when available (Python >= 3.11) and falls
back to a small TOML-subset reader good enough for this repository's
``pyproject.toml`` (tables, strings, booleans, numbers and string
arrays) so the analyzer also runs on Python 3.10 without third-party
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

__all__ = ["AnalyzeConfig", "CheckerConfig", "load_config"]

SECTION = "arcs-analyze"


@dataclass
class CheckerConfig:
    """Resolved per-checker settings (roots/allow plus free options)."""

    name: str
    roots: tuple[str, ...]
    allow: tuple[str, ...] = ()
    enabled: bool = True
    options: dict = field(default_factory=dict)

    def wants(self, rel: str) -> bool:
        """Whether the checker scans the repo-relative path ``rel``."""
        if not _under_any(rel, self.roots):
            return False
        return not _under_any(rel, self.allow)


@dataclass
class AnalyzeConfig:
    """The whole ``[tool.arcs-analyze]`` table, resolved."""

    repo_root: Path
    roots: tuple[str, ...]
    checkers: dict[str, CheckerConfig] = field(default_factory=dict)

    def checker(self, name: str) -> CheckerConfig:
        """The named checker's config, defaulting to the global roots."""
        config = self.checkers.get(name)
        if config is None:
            config = CheckerConfig(name=name, roots=self.roots)
            self.checkers[name] = config
        return config


def _under_any(rel: str, prefixes: tuple[str, ...]) -> bool:
    for prefix in prefixes:
        clean = prefix.rstrip("/")
        if rel == clean or rel.startswith(clean + "/"):
            return True
    return False


def load_config(repo_root: str | Path,
                pyproject: str | Path | None = None) -> AnalyzeConfig:
    """Load ``[tool.arcs-analyze]`` from the repo's ``pyproject.toml``."""
    repo_root = Path(repo_root).resolve()
    path = Path(pyproject) if pyproject else repo_root / "pyproject.toml"
    table: dict = {}
    if path.is_file():
        payload = _parse_toml(path.read_text())
        table = payload.get("tool", {}).get(SECTION, {})
    roots = tuple(table.get("roots", ("src", "benchmarks", "tools")))
    config = AnalyzeConfig(repo_root=repo_root, roots=roots)
    for key, value in table.items():
        if not isinstance(value, dict):
            continue
        options = dict(value)
        config.checkers[key] = CheckerConfig(
            name=key,
            roots=tuple(options.pop("roots", roots)),
            allow=tuple(options.pop("allow", ())),
            enabled=bool(options.pop("enabled", True)),
            options=options,
        )
    return config


# ----------------------------------------------------------------------
# TOML parsing (stdlib on 3.11+, subset fallback below)
# ----------------------------------------------------------------------
def _parse_toml(text: str) -> dict:
    if tomllib is not None:
        return tomllib.loads(text)
    return _parse_toml_subset(text)


def _parse_toml_subset(text: str) -> dict:
    """A TOML-subset reader for Python 3.10 (no ``tomllib``).

    Supports ``[dotted.table]`` headers, string / bool / number scalars
    and (possibly multiline) arrays of strings — the subset this
    repository's ``pyproject.toml`` uses.  Unparseable values are kept
    as raw strings, which is safe because the analyzer only consumes
    the ``tool.arcs-analyze`` tables.
    """
    root: dict = {}
    current = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            for part in _split_keys(line[1:-1]):
                current = current.setdefault(part, {})
            continue
        if "=" not in line:
            continue
        key, _, raw = line.partition("=")
        raw = raw.strip()
        # Multiline arrays: accumulate until the brackets balance.
        while raw.startswith("[") and raw.count("[") > raw.count("]"):
            if index >= len(lines):
                break
            raw += " " + _strip_comment(lines[index])
            index += 1
        current[_unquote(key.strip())] = _parse_value(raw)
    return root


def _strip_comment(line: str) -> str:
    out: list[str] = []
    quote: str | None = None
    for char in line:
        if quote:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char == "#":
            break
        out.append(char)
    return "".join(out).strip()


def _split_keys(dotted: str) -> list[str]:
    return [_unquote(part.strip()) for part in dotted.split(".")]


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "\"'":
        return token[1:-1]
    return token


def _parse_value(raw: str):
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip().rstrip(",")
        if not inner:
            return []
        return [_parse_value(part.strip())
                for part in _split_array(inner)]
    if raw in ("true", "false"):
        return raw == "true"
    if (raw.startswith('"') and raw.endswith('"')) or (
            raw.startswith("'") and raw.endswith("'")):
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw  # inline tables etc.: raw string, unused by us


def _split_array(inner: str) -> list[str]:
    parts: list[str] = []
    quote: str | None = None
    current: list[str] = []
    for char in inner:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            current.append(char)
        elif char == ",":
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts
