"""The interprocedural layer: function summaries and a call graph.

The per-file checkers in this package see one statement at a time; the
concurrency and resource-safety checkers (``lock-order``,
``fork-safety``) need to reason about what happens *across* calls — a
lock acquired here while another is held three frames up, a fork whose
child entry point eventually touches a parent-side sink.  This module
builds that view once per run:

* every function and method in the scanned files gets a
  :class:`FunctionSummary` — the locks it acquires (and in what nesting
  context), the calls it makes (and what locks are held at each call
  site), the threads/processes it spawns, the fork hooks it registers,
  and the module globals it closes or rebinds;
* call sites are resolved to summaries through a deliberately small
  amount of type inference layered on the driver's
  :class:`~tools.analyze.driver.ImportMap`:

  - ``module.func(...)`` / ``from m import f; f(...)`` resolve through
    the import aliases;
  - ``self.method(...)`` resolves within the enclosing class;
  - ``self.attr.method(...)`` resolves when ``__init__`` assigns
    ``self.attr = SomeClass(...)`` (or annotates ``attr: SomeClass``);
  - ``var.method(...)`` resolves when ``var`` is assigned a known
    constructor, a typed module global, or a typed ``self`` attribute
    in the same function;

* :meth:`CallGraph.transitive_locks` and :meth:`CallGraph.reachable`
  answer the two questions the checkers ask, with memoised fixpoints.

**What the graph cannot resolve** (documented limitations, shared by
every static analyser of this weight class): dynamic dispatch through
callbacks or ``getattr``, ``*args`` forwarding, relative imports,
monkey-patching, and types that only exist at runtime.  Unresolved
calls simply contribute no edges — the checkers built on the graph err
toward silence, never toward guessing.

Lock identity is **class-scoped**: every instance of ``C`` shares the
token for ``self._lock``.  That is the standard abstraction for lock-
order analysis (two *instances* of the same class interleaving their
locks is reported the same as one), and it keeps tokens stable across
files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.analyze.driver import FileContext, ImportMap

__all__ = [
    "CallGraph",
    "CallGraphBuilder",
    "CallSite",
    "ForkSite",
    "FunctionSummary",
    "LockAcquisition",
    "module_name_for",
]

#: threading primitives that participate in lock ordering.  Event and
#: Semaphore waits can deadlock too, but ordering analysis is about
#: mutual-exclusion primitives; the rest stay out of the token space.
_LOCK_CONSTRUCTORS = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "multiprocessing.Lock": "Lock",
    "multiprocessing.RLock": "RLock",
}

#: Raw dotted names that fork the process (fork start method: the child
#: inherits every lock and buffer in whatever state it was in).
_FORK_CALLS = {"os.fork", "os.forkpty", "pty.fork"}

#: Raw dotted names that fork+exec: the exec replaces the image, but a
#: held lock still stalls the window between fork and exec (and
#: ``posix_spawn`` is not guaranteed), so they count for held-across.
_SPAWN_CALLS = {
    "subprocess.Popen", "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
}

#: Resource-like constructors the summaries record for module globals
#: (the fork-safety sink analysis needs to know a module-level name is
#: a buffered writer).
_SINK_CONSTRUCTORS = {"open", "io.open", "os.fdopen", "gzip.open"}


def module_name_for(rel: str) -> str:
    """The dotted module name of a repo-relative path.

    ``src/repro/serve/workers.py`` → ``repro.serve.workers``;
    files outside ``src/`` keep their path spine
    (``benchmarks/perf_budget.py`` → ``benchmarks.perf_budget``).
    """
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition inside a function."""

    token: str
    lineno: int
    #: Tokens already held (lexically) when this one is taken.
    held: tuple[str, ...]
    #: Whether the primitive is reentrant (RLock): self-edges are fine.
    reentrant: bool = False


@dataclass(frozen=True)
class CallSite:
    """One call expression, with resolution candidates and held locks."""

    lineno: int
    #: The dotted name through the import map, when the callee is rooted
    #: in an import (``os.fork``, ``repro.obs.metrics.inc``); None for
    #: locals/attributes the map cannot see.
    raw: str | None
    #: Candidate summary keys this call may land on (empty when
    #: unresolvable).
    targets: tuple[str, ...]
    #: Lock tokens held at the call site.
    held: tuple[str, ...]
    #: ``x.join()`` flavoured call on a thread/process-typed receiver.
    blocking_join: bool = False


@dataclass(frozen=True)
class ForkSite:
    """A point where the process forks (or forks+execs)."""

    lineno: int
    kind: str                    # "fork" | "process-start" | "spawn"
    held: tuple[str, ...]
    #: Summary keys of the child entry point (``Process(target=f)``).
    child_targets: tuple[str, ...] = ()
    #: Argument expressions whose inferred type is a file/SharedMemory
    #: handle, passed to the child via ``args=``: (lineno, type, name).
    handle_args: tuple[tuple[str, str], ...] = ()


@dataclass
class FunctionSummary:
    """Everything the interprocedural checkers need about one function."""

    key: str                      # "<module>:<qualname>"
    rel: str
    module: str
    qualname: str
    lineno: int
    cls: str | None = None
    acquires: list[LockAcquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    forks: list[ForkSite] = field(default_factory=list)
    #: ``threading.Thread(...).start()`` sites: (lineno, daemon) where
    #: daemon is True/False when the kwarg is a literal, None otherwise.
    thread_starts: list[tuple[int, bool | None]] = field(
        default_factory=list)
    #: Registers an ``os.register_at_fork(after_in_child=...)`` hook.
    registers_at_fork: bool = False
    #: Module globals this function calls ``.close()``/``.flush()`` on.
    closes_globals: set[str] = field(default_factory=set)
    #: Module globals this function rebinds *without* closing first
    #: (the fork-safe "forget the inherited instance" idiom).
    forgets_globals: set[str] = field(default_factory=set)


class CallGraph:
    """The resolved whole-run view; built by :class:`CallGraphBuilder`."""

    def __init__(self, functions: dict[str, FunctionSummary],
                 by_dotted: dict[str, str],
                 module_sinks: dict[str, set[str]]):
        self.functions = functions
        #: dotted runtime name -> summary key, for raw-call resolution.
        self.by_dotted = by_dotted
        #: module -> names of module globals holding buffered sinks.
        self.module_sinks = module_sinks
        self._transitive_locks: dict[str, frozenset[str]] = {}
        self._transitive_forks: dict[str, tuple[ForkSite, ...]] = {}

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_call(self, site: CallSite) -> list[FunctionSummary]:
        """The summaries a call site may land on (possibly empty)."""
        keys: list[str] = list(site.targets)
        if site.raw is not None:
            key = self.by_dotted.get(site.raw)
            if key is not None:
                keys.append(key)
        seen: list[FunctionSummary] = []
        for key in keys:
            summary = self.functions.get(key)
            if summary is not None and summary not in seen:
                seen.append(summary)
        return seen

    # ------------------------------------------------------------------
    # Fixpoints
    # ------------------------------------------------------------------
    def transitive_locks(self, key: str) -> frozenset[str]:
        """Every lock token ``key`` may acquire, through any call chain."""
        return self._locks_fixpoint(key, set())

    def _locks_fixpoint(self, key: str,
                        visiting: set[str]) -> frozenset[str]:
        cached = self._transitive_locks.get(key)
        if cached is not None:
            return cached
        if key in visiting:
            return frozenset()  # cycle: the outer frame finishes it
        summary = self.functions.get(key)
        if summary is None:
            return frozenset()
        visiting.add(key)
        tokens = {acq.token for acq in summary.acquires}
        for site in summary.calls:
            for callee in self.resolve_call(site):
                tokens |= self._locks_fixpoint(callee.key, visiting)
        visiting.discard(key)
        result = frozenset(tokens)
        if not visiting:  # only cache complete (non-cyclic) answers
            self._transitive_locks[key] = result
        return result

    def transitive_forks(self, key: str) -> tuple[ForkSite, ...]:
        """Fork sites reachable from ``key`` (itself included)."""
        cached = self._transitive_forks.get(key)
        if cached is not None:
            return cached
        sites: list[ForkSite] = []
        for reached_key in self.reachable(key):
            summary = self.functions.get(reached_key)
            if summary is not None:
                sites.extend(summary.forks)
        result = tuple(sites)
        self._transitive_forks[key] = result
        return result

    def reachable(self, key: str) -> set[str]:
        """Summary keys reachable from ``key`` through resolved calls,
        including ``key`` itself."""
        seen: set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            summary = self.functions.get(current)
            if summary is None:
                continue
            for site in summary.calls:
                for callee in self.resolve_call(site):
                    if callee.key not in seen:
                        stack.append(callee.key)
        return seen


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
class _ModuleIndex:
    """Per-file name environment: classes, attr types, global types."""

    def __init__(self, module: str, tree: ast.AST, imports: ImportMap):
        self.module = module
        self.imports = imports
        #: class name -> {method name}
        self.classes: dict[str, set[str]] = {}
        #: class name -> attr -> dotted class name ("module.Class")
        self.attr_types: dict[str, dict[str, str]] = {}
        #: class name -> attr -> lock kind ("Lock"/"RLock"/...)
        self.attr_locks: dict[str, dict[str, str]] = {}
        #: module global -> dotted class name
        self.global_types: dict[str, str] = {}
        #: module globals that are lock primitives -> kind
        self.global_locks: dict[str, str] = {}
        #: module globals holding buffered sinks (open()/annotated sink)
        self.global_sinks: set[str] = set()
        #: module-level function names defined here
        self.functions: set[str] = set()
        self._scan(tree)

    # -- constructor/type helpers --------------------------------------
    def resolve_constructor(self, call: ast.expr) -> str | None:
        """``SomeClass(...)`` → dotted class name, local or imported."""
        if not isinstance(call, ast.Call):
            return None
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.classes:
                return f"{self.module}.{func.id}"
            resolved = self.imports.resolve(func)
            return resolved
        resolved = self.imports.resolve(func)
        return resolved

    def lock_kind(self, call: ast.expr) -> str | None:
        resolved = (self.imports.resolve(call.func)
                    if isinstance(call, ast.Call) else None)
        if resolved is None:
            return None
        return _LOCK_CONSTRUCTORS.get(resolved)

    def annotation_type(self, annotation: ast.expr | None) -> str | None:
        """``X``, ``X | None`` or ``Optional[X]`` → dotted name of X."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
                annotation.op, ast.BitOr):
            for side in (annotation.left, annotation.right):
                found = self.annotation_type(side)
                if found is not None:
                    return found
            return None
        if (isinstance(annotation, ast.Subscript)
                and isinstance(annotation.value, ast.Name)
                and annotation.value.id == "Optional"):
            return self.annotation_type(annotation.slice)
        if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str):
            try:
                return self.annotation_type(
                    ast.parse(annotation.value, mode="eval").body)
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Name):
            if annotation.id == "None":
                return None
            if annotation.id in self.classes:
                return f"{self.module}.{annotation.id}"
            return self.imports.resolve(annotation)
        if isinstance(annotation, ast.Attribute):
            return self.imports.resolve(annotation)
        return None

    def parameter_types(self, method: ast.AST) -> dict[str, str]:
        """Annotated parameters of a function → dotted class names."""
        types: dict[str, str] = {}
        args = method.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            found = self.annotation_type(arg.annotation)
            if found is not None:
                types[arg.arg] = found
        return types

    # -- scanning ------------------------------------------------------
    def _scan(self, tree: ast.AST) -> None:
        for node in tree.body if isinstance(tree, ast.Module) else []:
            if isinstance(node, ast.ClassDef):
                methods = {
                    child.name for child in node.body
                    if isinstance(child,
                                  (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                self.classes[node.name] = methods
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.add(node.name)
        # Second pass (classes must all be known first): attribute and
        # global types.
        for node in tree.body if isinstance(tree, ast.Module) else []:
            if isinstance(node, ast.ClassDef):
                self._scan_class(node)
            elif isinstance(node, ast.Assign):
                self._scan_global_assign(node)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                typed = self.annotation_type(node.annotation)
                if typed is not None:
                    self.global_types[node.target.id] = typed

    def _scan_global_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            kind = self.lock_kind(node.value)
            if kind is not None:
                self.global_locks[target.id] = kind
                continue
            if isinstance(node.value, ast.Call):
                resolved = (self.imports.resolve(node.value.func)
                            or (node.value.func.id
                                if isinstance(node.value.func, ast.Name)
                                else None))
                if resolved in _SINK_CONSTRUCTORS:
                    self.global_sinks.add(target.id)
                    continue
            ctor = self.resolve_constructor(node.value)
            if ctor is not None:
                self.global_types[target.id] = ctor

    def _scan_class(self, node: ast.ClassDef) -> None:
        attr_types = self.attr_types.setdefault(node.name, {})
        attr_locks = self.attr_locks.setdefault(node.name, {})
        for method in node.body:
            if not isinstance(method,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            param_types = self.parameter_types(method)
            for stmt in ast.walk(method):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(
                        stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    annotation = stmt.annotation
                if (not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"):
                    continue
                attr = target.attr
                kind = self.lock_kind(value) if value is not None else None
                if kind is not None:
                    attr_locks.setdefault(attr, kind)
                    continue
                ctor = (self.resolve_constructor(value)
                        if value is not None else None)
                if ctor is None:
                    ctor = self.annotation_type(annotation)
                if (ctor is None and isinstance(value, ast.Name)):
                    # self.index = index, where index is an annotated
                    # parameter: the dependency-injection idiom.
                    ctor = param_types.get(value.id)
                if ctor is not None:
                    attr_types.setdefault(attr, ctor)


class CallGraphBuilder:
    """Accumulates one :class:`FunctionSummary` per function, then
    resolves the whole-run :class:`CallGraph`."""

    def __init__(self) -> None:
        self._summaries: dict[str, FunctionSummary] = {}
        self._by_dotted: dict[str, str] = {}
        self._module_sinks: dict[str, set[str]] = {}
        #: dotted class name -> (module, class) for attr-type joins
        self._class_index: dict[str, tuple[_ModuleIndex, str]] = {}
        self._indexes: list[tuple[FileContext, _ModuleIndex]] = []

    def add_file(self, ctx: FileContext) -> None:
        module = module_name_for(ctx.rel)
        index = _ModuleIndex(module, ctx.tree, ctx.imports)
        self._indexes.append((ctx, index))
        for cls in index.classes:
            self._class_index[f"{module}.{cls}"] = (index, cls)
        if index.global_sinks:
            self._module_sinks[module] = set(index.global_sinks)

    def build(self) -> CallGraph:
        for ctx, index in self._indexes:
            self._summarise_module(ctx, index)
        self._resolve_placeholders()
        return CallGraph(self._summaries, self._by_dotted,
                         self._module_sinks)

    def _resolve_placeholders(self) -> None:
        """Translate ``@method:``/``@dotted:`` placeholder targets
        (recorded before all classes were indexed) into summary keys;
        unresolvable ones are dropped — silence over guessing."""
        import dataclasses

        def translate(targets: tuple[str, ...]) -> tuple[str, ...]:
            out: list[str] = []
            for target in targets:
                if target.startswith("@method:"):
                    dotted, _, method = target[8:].rpartition(".")
                    key = self.method_key(dotted, method)
                    if key is not None:
                        out.append(key)
                elif target.startswith("@dotted:"):
                    key = self._by_dotted.get(target[8:])
                    if key is not None:
                        out.append(key)
                else:
                    out.append(target)
            return tuple(out)

        for summary in self._summaries.values():
            summary.calls = [
                dataclasses.replace(site,
                                    targets=translate(site.targets))
                for site in summary.calls
            ]
            summary.forks = [
                dataclasses.replace(
                    fork, child_targets=translate(fork.child_targets))
                for fork in summary.forks
            ]

    # ------------------------------------------------------------------
    def _summarise_module(self, ctx: FileContext,
                          index: _ModuleIndex) -> None:
        module = index.module
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarise_function(ctx, index, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        self._summarise_function(
                            ctx, index, method, cls=node.name)
        # Top-level statements get a <module> pseudo-summary: import-
        # time forks, register_at_fork hook installs and module-level
        # lock use all count (def/class bodies are excluded - they are
        # summarised above and run at call time, not import time).
        summary = FunctionSummary(
            key=f"{module}:<module>", rel=ctx.rel, module=module,
            qualname="<module>", lineno=1,
        )
        self._summaries[summary.key] = summary
        walker = _FunctionWalker(summary, index, cls=None)
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                walker._walk(node, held=())

    def _summarise_function(self, ctx: FileContext, index: _ModuleIndex,
                            node: ast.AST, cls: str | None) -> None:
        module = index.module
        qualname = f"{cls}.{node.name}" if cls else node.name
        key = f"{module}:{qualname}"
        summary = FunctionSummary(
            key=key, rel=ctx.rel, module=module, qualname=qualname,
            lineno=node.lineno, cls=cls,
        )
        self._summaries[key] = summary
        self._by_dotted[f"{module}.{qualname}"] = key
        walker = _FunctionWalker(summary, index, cls)
        walker.run(node)

    # Exposed for checkers that resolve class methods from attr types.
    def method_key(self, dotted_class: str, method: str) -> str | None:
        entry = self._class_index.get(dotted_class)
        if entry is None:
            return None
        index, cls = entry
        if method in index.classes.get(cls, ()):
            return f"{index.module}:{cls}.{method}"
        return None


class _FunctionWalker:
    """One pass over a function body, tracking held locks and local
    types along the way."""

    def __init__(self, summary: FunctionSummary, index: _ModuleIndex,
                 cls: str | None):
        self.summary = summary
        self.index = index
        self.cls = cls
        self.module = index.module
        #: local name -> dotted class name
        self.local_types: dict[str, str] = {}
        #: local name -> lock token (locals holding lock primitives)
        self.local_locks: dict[str, str] = {}
        #: local name -> lock kind for the above
        self.local_lock_kinds: dict[str, str] = {}
        #: locals holding threading.Thread instances: name -> daemon
        self.local_threads: dict[str, bool | None] = {}
        #: locals holding process objects (mp.Process flavoured)
        self.local_processes: dict[str, ast.Call] = {}
        #: locals holding file/SharedMemory handles: name -> type label
        self.local_handles: dict[str, str] = {}
        #: globals declared with ``global X``
        self.declared_globals: set[str] = set()
        self._closed_globals_before_rebind: set[str] = set()

    # ------------------------------------------------------------------
    def run(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_types.update(
                self.index.parameter_types(node))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.arguments):
                continue
            self._walk(child, held=())
        # A global rebound in this function without a prior close of
        # the same global is the "forget" idiom.
        for name in self.declared_globals:
            if (name in self._rebound_globals
                    and name not in self._closed_globals_before_rebind):
                self.summary.forgets_globals.add(name)

    _rebound_globals: set[str]

    def _walk(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if not hasattr(self, "_rebound_globals"):
            self._rebound_globals = set()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested functions run later (callbacks); their lock usage
            # is summarised separately only for defs at module/class
            # level.  Walk them with an empty held set so a callback's
            # acquisitions don't look nested under the definer's locks.
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, ast.arguments):
                    self._walk(child, held=())
            return
        if isinstance(node, ast.Global):
            self.declared_globals.update(node.names)
        if isinstance(node, ast.With):
            self._walk_with(node, held)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._note_assign(node)
        if isinstance(node, ast.Call):
            self._note_call(node, held)
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    # ------------------------------------------------------------------
    def _walk_with(self, node: ast.With, held: tuple[str, ...]) -> None:
        inner = held
        for item in node.items:
            token, reentrant = self._lock_token(item.context_expr)
            if token is not None:
                self.summary.acquires.append(LockAcquisition(
                    token=token, lineno=node.lineno, held=inner,
                    reentrant=reentrant,
                ))
                inner = (*inner, token)
            # The context expression itself may contain calls.
            self._walk_expr_children(item.context_expr, held)
        for child in node.body:
            self._walk(child, inner)

    def _walk_expr_children(self, expr: ast.expr,
                            held: tuple[str, ...]) -> None:
        for child in ast.walk(expr):
            if isinstance(child, ast.Call):
                self._note_call(child, held)

    # ------------------------------------------------------------------
    # Lock identity
    # ------------------------------------------------------------------
    def _lock_token(self,
                    expr: ast.expr) -> tuple[str | None, bool]:
        """Canonical token for a lock-valued expression, or ``None``."""
        # with self._lock:  /  with self.anything_lock:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.cls is not None):
            kind = self.index.attr_locks.get(self.cls, {}).get(expr.attr)
            if kind is not None:
                return (f"{self.module}.{self.cls}.{expr.attr}",
                        kind == "RLock")
            if "lock" in expr.attr.lower():
                return f"{self.module}.{self.cls}.{expr.attr}", False
            return None, False
        # with other.attr_lock: (typed attribute of known class)
        if isinstance(expr, ast.Attribute):
            owner_type = self._expr_type(expr.value)
            if owner_type is not None:
                entry = self.index.attr_locks.get(
                    owner_type.rsplit(".", 1)[-1])
                kind = (entry or {}).get(expr.attr)
                if kind is not None or "lock" in expr.attr.lower():
                    return (f"{owner_type}.{expr.attr}",
                            kind == "RLock")
            return None, False
        if isinstance(expr, ast.Name):
            token = self.local_locks.get(expr.id)
            if token is not None:
                kind = self.local_lock_kinds.get(expr.id, "Lock")
                return token, kind == "RLock"
            kind = self.index.global_locks.get(expr.id)
            if kind is not None:
                return f"{self.module}.{expr.id}", kind == "RLock"
            return None, False
        # with threading.Lock():  (anonymous per-call primitive)
        if isinstance(expr, ast.Call):
            kind = self.index.lock_kind(expr)
            if kind is not None:
                token = (f"{self.module}.{self.summary.qualname}"
                         f".<anonymous@{expr.lineno}>")
                return token, kind == "RLock"
        return None, False

    def _expr_type(self, expr: ast.expr) -> str | None:
        """Dotted class name of an expression, where inference can."""
        if isinstance(expr, ast.Name):
            found = self.local_types.get(expr.id)
            if found is not None:
                return found
            return self.index.global_types.get(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.cls is not None):
            return self.index.attr_types.get(self.cls, {}).get(expr.attr)
        return None

    # ------------------------------------------------------------------
    # Statement notes
    # ------------------------------------------------------------------
    def _note_assign(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in self.declared_globals:
                self._rebound_globals.add(name)
                if name in self.summary.closes_globals:
                    self._closed_globals_before_rebind.add(name)
            if value is None:
                continue
            kind = self.index.lock_kind(value)
            if kind is not None:
                token = (f"{self.module}.{self.summary.qualname}.{name}")
                self.local_locks[name] = token
                self.local_lock_kinds[name] = kind
                continue
            if isinstance(value, ast.Call):
                resolved = self.index.imports.resolve(value.func)
                if resolved == "threading.Thread":
                    self.local_threads[name] = _literal_kwarg(
                        value, "daemon")
                    continue
                if resolved in ("multiprocessing.shared_memory"
                                ".SharedMemory",
                                "multiprocessing.SharedMemory"):
                    self.local_handles[name] = "SharedMemory"
                    continue
                if (resolved in _SINK_CONSTRUCTORS
                        or (isinstance(value.func, ast.Name)
                            and value.func.id == "open")):
                    self.local_handles[name] = "file"
                    continue
                if _is_process_ctor(value, resolved):
                    self.local_processes[name] = value
                    continue
            ctor = self.index.resolve_constructor(value)
            if ctor is not None:
                self.local_types[name] = ctor
                continue
            inferred = self._expr_type(value)
            if inferred is not None:
                self.local_types[name] = inferred

    def _note_call(self, node: ast.Call,
                   held: tuple[str, ...]) -> None:
        raw = self.index.imports.resolve(node.func)
        func = node.func
        targets: list[str] = []
        blocking_join = False

        if isinstance(func, ast.Name):
            if func.id in self.index.functions:
                targets.append(f"{self.module}:{func.id}")
            if raw is None and func.id in self.index.classes:
                init = f"{self.module}:{func.id}.__init__"
                targets.append(init)
        elif isinstance(func, ast.Attribute):
            owner = func.value
            method = func.attr
            if (isinstance(owner, ast.Name) and owner.id == "self"
                    and self.cls is not None):
                if method in self.index.classes.get(self.cls, ()):
                    targets.append(f"{self.module}:{self.cls}.{method}")
            else:
                owner_type = self._expr_type(owner)
                if owner_type is not None:
                    targets.append(
                        f"@method:{owner_type}.{method}")
                if isinstance(owner, ast.Name):
                    if method == "start" and owner.id in (
                            self.local_processes):
                        self._note_fork(node, held,
                                        self.local_processes[owner.id])
                    if method == "start" and owner.id in (
                            self.local_threads):
                        self.summary.thread_starts.append(
                            (node.lineno, self.local_threads[owner.id]))
                    if method == "join" and (
                            owner.id in self.local_threads
                            or owner.id in self.local_processes):
                        blocking_join = True
                    if (method in ("close", "flush")
                            and self._is_module_sink(owner.id)):
                        self.summary.closes_globals.add(owner.id)
                elif (isinstance(owner, ast.Attribute)
                        and method in ("join",)):
                    owner_type2 = self._expr_type(owner)
                    if owner_type2 in ("threading.Thread",
                                       "multiprocessing.Process"):
                        blocking_join = True

        # Direct Thread(...).start() / Process(...).start() chains.
        if (isinstance(func, ast.Attribute) and func.attr == "start"
                and isinstance(func.value, ast.Call)):
            inner_raw = self.index.imports.resolve(func.value.func)
            if inner_raw == "threading.Thread":
                self.summary.thread_starts.append(
                    (node.lineno, _literal_kwarg(func.value, "daemon")))
            elif _is_process_ctor(func.value, inner_raw):
                self._note_fork(node, held, func.value)

        if raw is not None:
            if raw in _FORK_CALLS:
                self.summary.forks.append(ForkSite(
                    lineno=node.lineno, kind="fork", held=held))
            elif raw in _SPAWN_CALLS:
                self.summary.forks.append(ForkSite(
                    lineno=node.lineno, kind="spawn", held=held))
            elif raw == "os.register_at_fork" and any(
                    kw.arg == "after_in_child" for kw in node.keywords):
                self.summary.registers_at_fork = True
            elif raw == "threading.Thread":
                pass  # creation alone; .start() is the event

        self.summary.calls.append(CallSite(
            lineno=node.lineno, raw=raw, targets=tuple(targets),
            held=held, blocking_join=blocking_join,
        ))

    def _is_module_sink(self, name: str) -> bool:
        """Whether ``name`` denotes a module global (checkers decide
        which globals are *buffered sinks*; the summary just records
        the close)."""
        return (name in self.index.global_sinks
                or name in self.index.global_types
                or name in self.declared_globals
                or name in self.index.global_locks)

    def _note_fork(self, node: ast.Call, held: tuple[str, ...],
                   ctor: ast.Call) -> None:
        child_targets: list[str] = []
        handle_args: list[tuple[str, str]] = []
        for kw in ctor.keywords:
            if kw.arg == "target":
                target_keys = self._callable_keys(kw.value)
                child_targets.extend(target_keys)
            elif kw.arg == "args" and isinstance(
                    kw.value, (ast.Tuple, ast.List)):
                for element in kw.value.elts:
                    if isinstance(element, ast.Name):
                        handle = self.local_handles.get(element.id)
                        if handle is not None:
                            handle_args.append((handle, element.id))
        self.summary.forks.append(ForkSite(
            lineno=node.lineno, kind="process-start", held=held,
            child_targets=tuple(child_targets),
            handle_args=tuple(handle_args),
        ))

    def _callable_keys(self, expr: ast.expr) -> list[str]:
        if isinstance(expr, ast.Name):
            if expr.id in self.index.functions:
                return [f"{self.module}:{expr.id}"]
            resolved = self.index.imports.resolve(expr)
            if resolved is not None:
                return [f"@dotted:{resolved}"]
        if isinstance(expr, ast.Attribute):
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self" and self.cls is not None
                    and expr.attr in self.index.classes.get(
                        self.cls, ())):
                return [f"{self.module}:{self.cls}.{expr.attr}"]
            resolved = self.index.imports.resolve(expr)
            if resolved is not None:
                return [f"@dotted:{resolved}"]
        return []


def _is_process_ctor(call: ast.Call, resolved: str | None) -> bool:
    """``multiprocessing.Process(...)`` or ``<ctx>.Process(...)``."""
    if resolved in ("multiprocessing.Process",
                    "multiprocessing.context.Process"):
        return True
    func = call.func
    return (isinstance(func, ast.Attribute) and func.attr == "Process"
            and any(kw.arg == "target" for kw in call.keywords))


def _literal_kwarg(call: ast.Call, name: str) -> bool | None:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            value = kw.value.value
            if isinstance(value, bool):
                return value
    return None
