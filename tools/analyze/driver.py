"""The shared visitor driver behind ``arcs-analyze``.

Every enabled checker declares the AST node types it is interested in
(:attr:`Checker.interests`); the driver parses each file **once**,
walks the tree **once** and dispatches each node to the checkers that
asked for its type, carrying the ancestor stack so checkers can ask
"am I inside a ``with self._lock:``?" without re-walking.  Cross-file
checkers accumulate state during the walk and report from
:meth:`Checker.finalize` once every file has been seen.

Suppression: a finding whose source line carries an
``# arcs-analyze: ignore`` comment is dropped; the targeted form
``# arcs-analyze: ignore[checker-a, checker-b]`` drops only the listed
checkers' findings.  Checkers may additionally honour their own waiver
comments (``no-wall-time`` keeps the historical ``# wall-clock: ok``).

Interprocedural checkers set :attr:`Checker.needs_callgraph`; when any
enabled checker does, the driver feeds every scanned file into a
:class:`~tools.analyze.callgraph.CallGraphBuilder` during the walk and
exposes the built :class:`~tools.analyze.callgraph.CallGraph` as
``result.callgraph`` before :meth:`Checker.finalize` runs.  Callers
that want the cheap single-file passes only (pre-commit on staged
files) pass ``callgraph=False`` to :class:`Analysis` — graph-dependent
checkers then see ``result.callgraph is None`` and stay silent.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from tools.analyze.config import AnalyzeConfig, CheckerConfig

__all__ = [
    "Analysis",
    "AnalysisResult",
    "Checker",
    "FileContext",
    "Finding",
    "ImportMap",
]

_IGNORE_RE = re.compile(
    r"#\s*arcs-analyze:\s*ignore(?:\[(?P<names>[^\]]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violated at a source location."""

    path: str       # repo-relative, POSIX separators
    line: int
    col: int
    checker: str
    message: str
    fixable: bool = False

    def render(self) -> str:
        tail = "  [fixable: run with --fix]" if self.fixable else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.checker}] {self.message}{tail}")

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
            "message": self.message,
            "fixable": self.fixable,
        }


class ImportMap:
    """Per-file import aliases, resolved once and shared by checkers.

    ``resolve(node)`` maps a call's ``func`` expression to a dotted name
    in canonical module terms: with ``import numpy as np``,
    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``;
    with ``from repro.obs import metrics``, ``metrics.inc`` resolves to
    ``repro.obs.metrics.inc``.  Names that are not rooted in an import
    (locals, attributes of instances) resolve to ``None``.
    """

    def __init__(self, tree: ast.AST):
        self.modules: dict[str, str] = {}      # local name -> module
        self.from_names: dict[str, str] = {}   # local name -> dotted
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.modules[local] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative imports: out of scope here
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_names[local] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, func: ast.expr) -> str | None:
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        base = node.id
        if base in self.from_names:
            return ".".join([self.from_names[base], *parts])
        if base in self.modules:
            return ".".join([self.modules[base], *parts])
        return None


class FileContext:
    """Everything checkers may want to know about the file being walked."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.AST):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = ImportMap(tree)
        #: Ancestors of the node being visited, outermost first.
        self.stack: list[ast.AST] = []
        self.findings: list[Finding] = []

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def enclosing_function(self) -> ast.AST | None:
        """The innermost enclosing function definition, if any."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def report(self, checker: "Checker", node: ast.AST, message: str,
               fixable: bool = False) -> None:
        self.findings.append(Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            checker=checker.name,
            message=message,
            fixable=fixable,
        ))


class Checker:
    """Base class for one analysis pass (a plugin).

    Subclasses set :attr:`name`, :attr:`description` and
    :attr:`interests`, then implement :meth:`visit`.  Cross-file
    checkers override :meth:`finalize` (and :meth:`apply_fix` when the
    findings are mechanically fixable).
    """

    name: str = ""
    description: str = ""
    #: AST node classes this checker wants dispatched to :meth:`visit`.
    interests: tuple[type, ...] = ()
    #: Whether :meth:`finalize` consumes ``result.callgraph``.  The
    #: driver only pays for graph construction when an enabled checker
    #: asks for it (and the caller did not disable it).
    needs_callgraph: bool = False

    def __init__(self, config: CheckerConfig, analysis: "Analysis"):
        self.config = config
        self.analysis = analysis

    # -- per-file hooks -------------------------------------------------
    def wants(self, rel: str) -> bool:
        return self.config.wants(rel)

    def begin_file(self, ctx: FileContext) -> None:
        """Called before the walk of one file."""

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        """Called for every node matching :attr:`interests`."""

    def end_file(self, ctx: FileContext) -> None:
        """Called after the walk of one file."""

    # -- whole-run hooks ------------------------------------------------
    def finalize(self, result: "AnalysisResult") -> None:
        """Called once after every file; cross-file findings go here."""

    def apply_fix(self, result: "AnalysisResult") -> list[str]:
        """Rewrite files to resolve this checker's fixable findings.

        Returns the repo-relative paths that were modified.
        """
        return []


@dataclass
class AnalysisResult:
    """The outcome of one analyzer run."""

    repo_root: Path
    checkers: list[str]
    files_scanned: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    #: Whether every configured root was scanned (False when the caller
    #: passed an explicit file subset, e.g. pre-commit's changed files).
    #: Checkers whose rules hinge on the *absence* of something (a
    #: fork hook never registered, a forgetter nowhere in the project)
    #: must gate those rules on this flag.
    complete: bool = True
    #: checker name -> one-line description, for report metadata.
    descriptions: dict[str, str] = field(default_factory=dict)
    #: The interprocedural view (:class:`tools.analyze.callgraph.
    #: CallGraph`), or ``None`` when no enabled checker needed it or
    #: the caller disabled it.
    callgraph: object | None = field(
        default=None, repr=False, compare=False)
    #: The builder that produced :attr:`callgraph` (checkers use its
    #: ``method_key`` to resolve attr-typed method calls).
    callgraph_builder: object | None = field(
        default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "format": "arcs-analyze-report",
            "version": 1,
            "checkers": list(self.checkers),
            "files_scanned": len(self.files_scanned),
            "complete": self.complete,
            "status": "pass" if self.ok else "fail",
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def to_sarif(self) -> dict:
        """The run as a SARIF 2.1.0 log (GitHub code-scanning dialect).

        One run, one rule per enabled checker (present even when a
        checker found nothing, so the rule inventory is stable across
        clean and failing runs), one result per finding.  Paths are
        repo-relative with the conventional ``%SRCROOT%`` base id,
        which is what the code-scanning upload action expects from a
        checkout-rooted tool.
        """
        rule_index: dict[str, int] = {}
        rules: list[dict] = []
        known = list(self.checkers)
        known.extend(f.checker for f in self.findings
                     if f.checker not in known)
        for name in known:
            rule_index[name] = len(rules)
            rules.append({
                "id": name,
                "name": name,
                "shortDescription": {
                    "text": self.descriptions.get(name, name),
                },
                "helpUri": ("https://github.com/arcs/arcs/blob/"
                            "main/docs/static_analysis.md"),
                "defaultConfiguration": {"level": "error"},
            })
        results: list[dict] = []
        for finding in self.findings:
            results.append({
                "ruleId": finding.checker,
                "ruleIndex": rule_index[finding.checker],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    },
                }],
            })
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "arcs-analyze",
                    "informationUri": ("https://github.com/arcs/arcs/"
                                       "blob/main/docs/"
                                       "static_analysis.md"),
                    "rules": rules,
                }},
                "columnKind": "unicodeCodePoints",
                "results": results,
            }],
        }

    def to_sarif_json(self) -> str:
        return json.dumps(self.to_sarif(), indent=2)

    def render(self) -> str:
        if self.ok:
            scanned = len(self.files_scanned)
            names = ", ".join(self.checkers)
            return (f"arcs-analyze: {scanned} file(s) clean "
                    f"({names})")
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"arcs-analyze: {len(self.findings)} finding(s) in "
            f"{len(self.files_scanned)} file(s)"
        )
        return "\n".join(lines)


class Analysis:
    """One configured analyzer run over a set of files."""

    def __init__(self, config: AnalyzeConfig,
                 checker_classes: list[type[Checker]],
                 callgraph: bool = True):
        self.config = config
        self.callgraph_enabled = callgraph
        self.checkers: list[Checker] = []
        for cls in checker_classes:
            checker_config = config.checker(cls.name)
            if checker_config.enabled:
                self.checkers.append(cls(checker_config, self))

    # ------------------------------------------------------------------
    # File selection
    # ------------------------------------------------------------------
    def _relativize(self, path: Path) -> str | None:
        try:
            return path.resolve().relative_to(
                self.config.repo_root
            ).as_posix()
        except ValueError:
            return None

    def _all_files(self) -> list[str]:
        roots: set[str] = set()
        for checker in self.checkers:
            roots.update(checker.config.roots)
        seen: set[str] = set()
        for root in sorted(roots):
            base = self.config.repo_root / root
            if base.is_file():
                seen.add(base.relative_to(
                    self.config.repo_root).as_posix())
            elif base.is_dir():
                for path in base.rglob("*.py"):
                    seen.add(path.relative_to(
                        self.config.repo_root).as_posix())
        return sorted(seen)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, paths: list[str | Path] | None = None) -> AnalysisResult:
        result = AnalysisResult(
            repo_root=self.config.repo_root,
            checkers=[checker.name for checker in self.checkers],
            complete=paths is None,
            descriptions={checker.name: checker.description
                          for checker in self.checkers},
        )
        builder = None
        if self.callgraph_enabled and any(
                checker.needs_callgraph for checker in self.checkers):
            # Imported lazily: callgraph.py uses this module's classes.
            from tools.analyze.callgraph import CallGraphBuilder
            builder = CallGraphBuilder()
        if paths is None:
            rels = self._all_files()
        else:
            rels = []
            for entry in paths:
                rel = self._relativize(Path(entry))
                if rel is not None and rel.endswith(".py"):
                    rels.append(rel)
            rels = sorted(set(rels))
        suppressed: dict[str, list[str]] = {}
        for rel in rels:
            interested = [c for c in self.checkers if c.wants(rel)]
            if not interested:
                continue
            result.files_scanned.append(rel)
            findings = self._scan_file(rel, interested, suppressed,
                                       builder)
            result.findings.extend(findings)
        if builder is not None:
            result.callgraph = builder.build()
            result.callgraph_builder = builder
        for checker in self.checkers:
            before = len(result.findings)
            checker.finalize(result)
            result.findings[before:] = self._filter_suppressed(
                result.findings[before:], suppressed
            )
        result.findings.sort()
        return result

    def _scan_file(self, rel: str, checkers: list[Checker],
                   suppressed: dict[str, list[str]],
                   builder=None) -> list[Finding]:
        path = self.config.repo_root / rel
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return [Finding(
                path=rel, line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                checker="parse",
                message=f"file does not parse: {error.msg}",
            )]
        ctx = FileContext(path, rel, source, tree)
        suppressed[rel] = ctx.lines
        if builder is not None:
            builder.add_file(ctx)
        for checker in checkers:
            checker.begin_file(ctx)
        self._walk(ctx, tree, checkers)
        for checker in checkers:
            checker.end_file(ctx)
        return self._filter_suppressed(ctx.findings, suppressed)

    def _walk(self, ctx: FileContext, tree: ast.AST,
              checkers: list[Checker]) -> None:
        dispatch: list[tuple[Checker, tuple[type, ...]]] = [
            (checker, checker.interests)
            for checker in checkers if checker.interests
        ]

        def recurse(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                for checker, interests in dispatch:
                    if isinstance(child, interests):
                        checker.visit(ctx, child)
                ctx.stack.append(child)
                recurse(child)
                ctx.stack.pop()

        recurse(tree)

    # ------------------------------------------------------------------
    # Suppression
    # ------------------------------------------------------------------
    def _filter_suppressed(
            self, findings: list[Finding],
            suppressed: dict[str, list[str]]) -> list[Finding]:
        kept = []
        for finding in findings:
            lines = suppressed.get(finding.path)
            if lines is None:
                lines = self._load_lines(finding.path)
                suppressed[finding.path] = lines
            line = (lines[finding.line - 1]
                    if 1 <= finding.line <= len(lines) else "")
            if not _suppresses(line, finding.checker):
                kept.append(finding)
        return kept

    def _load_lines(self, rel: str) -> list[str]:
        path = self.config.repo_root / rel
        try:
            return path.read_text().splitlines()
        except OSError:
            return []

    # ------------------------------------------------------------------
    # Fixing
    # ------------------------------------------------------------------
    def fix(self, result: AnalysisResult) -> list[str]:
        """Apply every checker's fixes; returns modified rel paths."""
        changed: list[str] = []
        for checker in self.checkers:
            changed.extend(checker.apply_fix(result))
        return changed


def _suppresses(line: str, checker: str) -> bool:
    match = _IGNORE_RE.search(line)
    if not match:
        return False
    names = match.group("names")
    if names is None:
        return True
    wanted = {name.strip() for name in names.split(",") if name.strip()}
    return checker in wanted
