"""``concurrency``: the serving layer's shared-state discipline.

``repro.serve`` is a threaded server built on two conventions instead
of pervasive locking: state shared between request threads is either
**immutable after publication** (snapshot dicts swapped with one atomic
reference assignment, as in ``ModelRegistry._install``) or **guarded by
the owning object's ``self._lock``** (as in ``MetricsRegistry``).  This
checker machine-checks the conventions inside its configured roots:

* **unguarded writes to lock-guarded attributes** — if a class ever
  assigns ``self.attr`` inside a ``with self._lock:`` block, every
  other assignment to that attribute (outside ``__init__``) must be
  guarded too;
* **non-atomic read-modify-write** — ``self.attr += ...`` outside a
  lock is a race (two request threads interleave load and store), even
  though either plain assignment alone would be atomic under the GIL;
* **in-place mutation of published mappings** — ``self.attr[k] = v``,
  ``del self.attr[k]`` or dict mutators (``update``/``pop``/
  ``setdefault``/``popitem``/``clear``) outside a lock mutate a
  snapshot concurrent readers may hold; build a replacement and swap it
  in one assignment instead;
* **publish-then-mutate** — assigning a local container to a ``self``
  attribute *publishes* it to other threads; mutating that local
  afterwards in the same function mutates the published snapshot;
* **per-call synchronisation primitives** — ``threading.Lock()`` (or
  ``RLock``/``Condition``/``Event``/``Semaphore``/``Barrier``) created
  anywhere but ``__init__`` or module level guards nothing, because
  every call gets a fresh primitive.

``__init__`` is exempt from the attribute rules: until the constructor
returns, no other thread can hold the object.
"""

from __future__ import annotations

import ast

from tools.analyze.driver import Checker, FileContext

__all__ = ["ConcurrencyChecker"]

_PRIMITIVES = {
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier",
}

#: Mutators of dict-like snapshots (the structures this layer shares).
_DICT_MUTATORS = {"update", "setdefault", "pop", "popitem", "clear"}

#: Mutators that matter once a local container has been published.
_ANY_MUTATORS = _DICT_MUTATORS | {
    "append", "extend", "insert", "remove", "add", "discard",
}


def _self_attr(node: ast.expr) -> str | None:
    """``self.attr`` -> ``"attr"``, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _is_lock_item(item: ast.withitem) -> bool:
    attr = _self_attr(item.context_expr)
    return attr is not None and "lock" in attr.lower()


class ConcurrencyChecker(Checker):
    name = "concurrency"
    description = ("shared-state discipline in the threaded serving "
                   "layer (locks, snapshot immutability)")
    interests = (ast.Call, ast.ClassDef)

    # ------------------------------------------------------------------
    # Per-call-site rule: threading primitives created per call
    # ------------------------------------------------------------------
    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_primitive(ctx, node)
        elif isinstance(node, ast.ClassDef):
            self._check_class(ctx, node)

    def _check_primitive(self, ctx: FileContext, node: ast.Call) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None or not resolved.startswith("threading."):
            return
        if resolved.split(".")[-1] not in _PRIMITIVES:
            return
        function = ctx.enclosing_function()
        if function is None or function.name == "__init__":
            return
        ctx.report(
            self, node,
            f"{resolved}() created inside {function.name}(); a "
            "primitive built per call guards nothing — create it once "
            "in __init__ (or at module level)",
        )

    # ------------------------------------------------------------------
    # Per-class rules
    # ------------------------------------------------------------------
    def _check_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        methods = [
            child for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        writes: list[tuple[ast.stmt, str, bool, bool, str]] = []
        # (node, attr, under_lock, is_aug, method) for every self.attr
        # assignment outside __init__.
        for method in methods:
            if method.name == "__init__":
                continue
            self._scan_method(ctx, method, writes)
        guarded = {attr for _, attr, locked, _, _ in writes if locked}
        for stmt, attr, locked, is_aug, method_name in writes:
            if locked:
                continue
            if is_aug:
                ctx.report(
                    self, stmt,
                    f"self.{attr} augmented outside a lock in "
                    f"{method_name}(); += on shared state is a "
                    "non-atomic read-modify-write",
                )
            elif attr in guarded:
                ctx.report(
                    self, stmt,
                    f"self.{attr} is written under 'with self._lock:' "
                    f"elsewhere in {node.name} but assigned unguarded "
                    f"in {method_name}(); guard every write",
                )

    def _scan_method(self, ctx: FileContext, method: ast.AST,
                     writes: list) -> None:
        published: dict[str, int] = {}  # local name -> publish lineno

        def scan(node: ast.AST, under_lock: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_lock = under_lock
                if isinstance(child, ast.With) and any(
                        _is_lock_item(item) for item in child.items):
                    child_lock = True
                self._scan_stmt(ctx, child, under_lock, method,
                                writes, published)
                scan(child, child_lock)

        scan(method, False)

    def _scan_stmt(self, ctx: FileContext, node: ast.AST,
                   under_lock: bool, method: ast.AST,
                   writes: list, published: dict[str, int]) -> None:
        method_name = method.name
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    writes.append((
                        node, attr, under_lock,
                        isinstance(node, ast.AugAssign), method_name,
                    ))
                    # Publishing a local container to self: later
                    # in-place mutation of the local mutates the
                    # now-shared snapshot.
                    value = getattr(node, "value", None)
                    if isinstance(value, ast.Name):
                        published.setdefault(value.id, node.lineno)
                elif isinstance(target, ast.Subscript):
                    self._check_subscript(ctx, node, target,
                                          under_lock, method_name,
                                          published)
                elif (isinstance(target, ast.Name)
                      and target.id in published
                      and isinstance(node, ast.Assign)):
                    # Rebound to a fresh object: no longer the
                    # published snapshot.
                    del published[target.id]
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._check_subscript(ctx, node, target,
                                          under_lock, method_name,
                                          published)
        elif isinstance(node, ast.Call):
            self._check_mutator_call(ctx, node, under_lock,
                                     method_name, published)

    def _check_subscript(self, ctx: FileContext, stmt: ast.AST,
                         target: ast.Subscript, under_lock: bool,
                         method_name: str,
                         published: dict[str, int]) -> None:
        if under_lock:
            return
        attr = _self_attr(target.value)
        if attr is not None:
            ctx.report(
                self, stmt,
                f"self.{attr}[...] mutated in place in {method_name}() "
                "outside a lock; concurrent readers may hold this "
                "snapshot — build a replacement and swap it in one "
                "assignment",
            )
            return
        if (isinstance(target.value, ast.Name)
                and target.value.id in published
                and stmt.lineno > published[target.value.id]):
            ctx.report(
                self, stmt,
                f"local '{target.value.id}' was published to self at "
                f"line {published[target.value.id]} and is mutated "
                f"afterwards; mutate before publishing, or publish a "
                "copy",
            )

    def _check_mutator_call(self, ctx: FileContext, node: ast.Call,
                            under_lock: bool, method_name: str,
                            published: dict[str, int]) -> None:
        if under_lock or not isinstance(node.func, ast.Attribute):
            return
        owner = node.func.value
        attr = _self_attr(owner)
        if attr is not None and node.func.attr in _DICT_MUTATORS:
            ctx.report(
                self, node,
                f"self.{attr}.{node.func.attr}(...) in {method_name}() "
                "outside a lock mutates a shared mapping in place; "
                "build a replacement and swap it in one assignment",
            )
            return
        if (isinstance(owner, ast.Name) and owner.id in published
                and node.func.attr in _ANY_MUTATORS
                and node.lineno > published[owner.id]):
            ctx.report(
                self, node,
                f"local '{owner.id}' was published to self at line "
                f"{published[owner.id]} and is mutated afterwards via "
                f".{node.func.attr}(); mutate before publishing",
            )
