"""``concurrency``: the serving layer's shared-state discipline.

``repro.serve`` is a threaded server built on two conventions instead
of pervasive locking: state shared between request threads is either
**immutable after publication** (snapshot dicts swapped with one atomic
reference assignment, as in ``ModelRegistry._install``) or **guarded by
the owning object's ``self._lock``** (as in ``MetricsRegistry``).  This
checker machine-checks the conventions inside its configured roots:

* **unguarded writes to lock-guarded attributes** — if a class ever
  assigns ``self.attr`` inside a ``with self._lock:`` block, every
  other assignment to that attribute (outside ``__init__``) must be
  guarded too;
* **non-atomic read-modify-write** — ``self.attr += ...`` outside a
  lock is a race (two request threads interleave load and store), even
  though either plain assignment alone would be atomic under the GIL;
* **in-place mutation of published mappings** — ``self.attr[k] = v``,
  ``del self.attr[k]`` or dict mutators (``update``/``pop``/
  ``setdefault``/``popitem``/``clear``) outside a lock mutate a
  snapshot concurrent readers may hold; build a replacement and swap it
  in one assignment instead;
* **publish-then-mutate** — assigning a local container to a ``self``
  attribute *publishes* it to other threads; mutating that local
  afterwards in the same function mutates the published snapshot;
* **per-call synchronisation primitives** — ``threading.Lock()`` (or
  ``RLock``/``Condition``/``Event``/``Semaphore``/``Barrier``) created
  anywhere but ``__init__`` or module level guards nothing, because
  every call gets a fresh primitive — *unless the primitive escapes
  the call*: captured by a closure (the per-mapping countdown lock in
  ``serve/workers._close_mapping_when_views_die``), assigned to an
  attribute (the ``reinit_after_fork`` re-arm idiom in ``repro.obs``),
  returned, or passed to another call all make the same object shared
  across calls, which is exactly what a primitive is for.  A fresh
  primitive used *directly* (``threading.Event().wait(t)`` as a sleep)
  synchronises nobody but also lies to nobody, and is exempt.

``__init__`` is exempt from the attribute rules: until the constructor
returns, no other thread can hold the object.  Three further
refinements keep the rules honest on real code:

* attributes that *are* threading primitives (``self._stop`` assigned
  ``threading.Event()`` in ``__init__``) are exempt from the mutator
  rule — ``self._stop.clear()`` is the primitive's own thread-safe
  API, not an unguarded dict mutation;
* a **private** method whose every intra-class call site sits under
  ``with self._lock:`` runs under the lock by construction
  (``EventSink._rotate``, called only from ``emit``), so its body is
  scanned as guarded;
* classes listed in the checker's ``external-sync`` option are skipped
  entirely: their docstrings document that a single owner serialises
  access (``TrafficWindow`` under ``TrafficMonitor``, the lock-less
  GIL-atomic metric instruments, the single-threaded stream pipeline).
  The justification lives in ``pyproject.toml`` next to the name — in
  config, not inline, so every waiver is reviewable in one place.
"""

from __future__ import annotations

import ast

from tools.analyze.driver import Checker, FileContext

__all__ = ["ConcurrencyChecker"]

_PRIMITIVES = {
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier",
}

#: Mutators of dict-like snapshots (the structures this layer shares).
_DICT_MUTATORS = {"update", "setdefault", "pop", "popitem", "clear"}

#: Mutators that matter once a local container has been published.
_ANY_MUTATORS = _DICT_MUTATORS | {
    "append", "extend", "insert", "remove", "add", "discard",
}


def _self_attr(node: ast.expr) -> str | None:
    """``self.attr`` -> ``"attr"``, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _is_lock_item(item: ast.withitem) -> bool:
    attr = _self_attr(item.context_expr)
    return attr is not None and "lock" in attr.lower()


class ConcurrencyChecker(Checker):
    name = "concurrency"
    description = ("shared-state discipline in the threaded serving "
                   "layer (locks, snapshot immutability)")
    interests = (ast.Call, ast.ClassDef)

    # ------------------------------------------------------------------
    # Per-call-site rule: threading primitives created per call
    # ------------------------------------------------------------------
    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_primitive(ctx, node)
        elif isinstance(node, ast.ClassDef):
            self._check_class(ctx, node)

    def _check_primitive(self, ctx: FileContext, node: ast.Call) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None or not resolved.startswith("threading."):
            return
        if resolved.split(".")[-1] not in _PRIMITIVES:
            return
        function = ctx.enclosing_function()
        if function is None or function.name == "__init__":
            return
        if self._primitive_escapes(ctx, node, function):
            return
        ctx.report(
            self, node,
            f"{resolved}() created inside {function.name}(); a "
            "primitive built per call guards nothing — create it once "
            "in __init__ (or at module level), or share it (closure, "
            "attribute) if per-call creation is the point",
        )

    def _primitive_escapes(self, ctx: FileContext, node: ast.Call,
                           function: ast.AST) -> bool:
        """Whether the fresh primitive leaves the creating call's frame
        (and can therefore actually be shared)."""
        parent = ctx.stack[-1] if ctx.stack else None
        # threading.Event().wait(t): used directly, never bound - the
        # deliberate interruptible-sleep idiom, not a guard.
        if isinstance(parent, ast.Attribute):
            return True
        # Passed straight into another call, or returned: escapes.
        if isinstance(parent, (ast.Call, ast.Return, ast.keyword)):
            return True
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            # self.x = Lock() / obj.x = Lock(): the re-arm-after-fork
            # idiom; the attribute shares it across calls.
            if any(isinstance(t, (ast.Attribute, ast.Subscript))
                   for t in targets):
                return True
            names = {t.id for t in targets if isinstance(t, ast.Name)}
            if names:
                return self._name_escapes(function, names)
        if (isinstance(parent, ast.AnnAssign)
                and isinstance(parent.target,
                               (ast.Attribute, ast.Subscript))):
            return True
        return False

    @staticmethod
    def _name_escapes(function: ast.AST, names: set[str]) -> bool:
        """Whether any of ``names`` leaves the function: captured by a
        nested def/lambda, returned, stored, or passed to a call."""
        for node in ast.walk(function):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not function:
                for inner in ast.walk(node):
                    if (isinstance(inner, ast.Name)
                            and inner.id in names):
                        return True
            elif isinstance(node, (ast.Return, ast.Yield)):
                value = node.value
                if value is not None and any(
                        isinstance(n, ast.Name) and n.id in names
                        for n in ast.walk(value)):
                    return True
            elif isinstance(node, ast.Call):
                for arg in (list(node.args)
                            + [kw.value for kw in node.keywords]):
                    if any(isinstance(n, ast.Name) and n.id in names
                           for n in ast.walk(arg)):
                        return True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript,
                                           ast.Tuple, ast.List)):
                        if any(isinstance(n, ast.Name)
                               and n.id in names
                               for n in ast.walk(node.value)):
                            return True
        return False

    # ------------------------------------------------------------------
    # Per-class rules
    # ------------------------------------------------------------------
    def _check_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        external = self.config.options.get("external-sync", ())
        if node.name in external:
            # Serialised by a documented single owner; the waiver (and
            # its justification) lives in pyproject.toml.
            return
        methods = [
            child for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        primitive_attrs = self._primitive_attrs(ctx, methods)
        locked_only = self._locked_only_private_methods(methods)
        writes: list[tuple[ast.stmt, str, bool, bool, str]] = []
        # (node, attr, under_lock, is_aug, method) for every self.attr
        # assignment outside __init__.
        for method in methods:
            if method.name == "__init__":
                continue
            self._scan_method(ctx, method, writes, primitive_attrs,
                              initial_lock=method.name in locked_only)
        guarded = {attr for _, attr, locked, _, _ in writes if locked}
        for stmt, attr, locked, is_aug, method_name in writes:
            if locked:
                continue
            if is_aug:
                ctx.report(
                    self, stmt,
                    f"self.{attr} augmented outside a lock in "
                    f"{method_name}(); += on shared state is a "
                    "non-atomic read-modify-write",
                )
            elif attr in guarded:
                ctx.report(
                    self, stmt,
                    f"self.{attr} is written under 'with self._lock:' "
                    f"elsewhere in {node.name} but assigned unguarded "
                    f"in {method_name}(); guard every write",
                )

    @staticmethod
    def _primitive_attrs(ctx: FileContext, methods: list) -> set[str]:
        """Attributes ``__init__`` binds to threading primitives: their
        methods (``.set()``/``.clear()``/``.release()``) are the
        primitive's own thread-safe API."""
        attrs: set[str] = set()
        for method in methods:
            if method.name != "__init__":
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                resolved = ctx.imports.resolve(value.func)
                if (resolved is None
                        or not resolved.startswith("threading.")
                        or resolved.split(".")[-1] not in _PRIMITIVES):
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        attrs.add(attr)
        return attrs

    @staticmethod
    def _locked_only_private_methods(methods: list) -> set[str]:
        """Private methods whose *every* intra-class call site is under
        a lock: they run guarded by construction and their bodies are
        scanned as such (``EventSink._rotate``, only called from
        ``emit`` inside ``with self._lock:``)."""
        call_sites: dict[str, list[bool]] = {}

        def record(node: ast.AST, under_lock: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_lock = under_lock
                if isinstance(child, ast.With) and any(
                        _is_lock_item(item) for item in child.items):
                    child_lock = True
                if isinstance(child, ast.Call):
                    callee = child.func
                    if (isinstance(callee, ast.Attribute)
                            and isinstance(callee.value, ast.Name)
                            and callee.value.id == "self"):
                        call_sites.setdefault(
                            callee.attr, []).append(under_lock)
                record(child, child_lock)

        for method in methods:
            record(method, False)
        names = {method.name for method in methods}
        return {
            name for name, sites in call_sites.items()
            if name in names
            and name.startswith("_") and not name.startswith("__")
            and sites and all(sites)
        }

    def _scan_method(self, ctx: FileContext, method: ast.AST,
                     writes: list, primitive_attrs: set[str],
                     initial_lock: bool = False) -> None:
        published: dict[str, int] = {}  # local name -> publish lineno

        def scan(node: ast.AST, under_lock: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_lock = under_lock
                if isinstance(child, ast.With) and any(
                        _is_lock_item(item) for item in child.items):
                    child_lock = True
                self._scan_stmt(ctx, child, under_lock, method,
                                writes, published, primitive_attrs)
                scan(child, child_lock)

        scan(method, initial_lock)

    def _scan_stmt(self, ctx: FileContext, node: ast.AST,
                   under_lock: bool, method: ast.AST,
                   writes: list, published: dict[str, int],
                   primitive_attrs: set[str] = frozenset()) -> None:
        method_name = method.name
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    writes.append((
                        node, attr, under_lock,
                        isinstance(node, ast.AugAssign), method_name,
                    ))
                    # Publishing a local container to self: later
                    # in-place mutation of the local mutates the
                    # now-shared snapshot.
                    value = getattr(node, "value", None)
                    if isinstance(value, ast.Name):
                        published.setdefault(value.id, node.lineno)
                elif isinstance(target, ast.Subscript):
                    self._check_subscript(ctx, node, target,
                                          under_lock, method_name,
                                          published)
                elif (isinstance(target, ast.Name)
                      and target.id in published
                      and isinstance(node, ast.Assign)):
                    # Rebound to a fresh object: no longer the
                    # published snapshot.
                    del published[target.id]
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._check_subscript(ctx, node, target,
                                          under_lock, method_name,
                                          published)
        elif isinstance(node, ast.Call):
            self._check_mutator_call(ctx, node, under_lock,
                                     method_name, published,
                                     primitive_attrs)

    def _check_subscript(self, ctx: FileContext, stmt: ast.AST,
                         target: ast.Subscript, under_lock: bool,
                         method_name: str,
                         published: dict[str, int]) -> None:
        if under_lock:
            return
        attr = _self_attr(target.value)
        if attr is not None:
            ctx.report(
                self, stmt,
                f"self.{attr}[...] mutated in place in {method_name}() "
                "outside a lock; concurrent readers may hold this "
                "snapshot — build a replacement and swap it in one "
                "assignment",
            )
            return
        if (isinstance(target.value, ast.Name)
                and target.value.id in published
                and stmt.lineno > published[target.value.id]):
            ctx.report(
                self, stmt,
                f"local '{target.value.id}' was published to self at "
                f"line {published[target.value.id]} and is mutated "
                f"afterwards; mutate before publishing, or publish a "
                "copy",
            )

    def _check_mutator_call(self, ctx: FileContext, node: ast.Call,
                            under_lock: bool, method_name: str,
                            published: dict[str, int],
                            primitive_attrs: set[str] = frozenset(),
                            ) -> None:
        if under_lock or not isinstance(node.func, ast.Attribute):
            return
        owner = node.func.value
        attr = _self_attr(owner)
        if attr in primitive_attrs:
            # self._stop.clear() on a threading.Event: the primitive's
            # own thread-safe API, not a dict being mutated.
            return
        if attr is not None and node.func.attr in _DICT_MUTATORS:
            ctx.report(
                self, node,
                f"self.{attr}.{node.func.attr}(...) in {method_name}() "
                "outside a lock mutates a shared mapping in place; "
                "build a replacement and swap it in one assignment",
            )
            return
        if (isinstance(owner, ast.Name) and owner.id in published
                and node.func.attr in _ANY_MUTATORS
                and node.lineno > published[owner.id]):
            ctx.report(
                self, node,
                f"local '{owner.id}' was published to self at line "
                f"{published[owner.id]} and is mutated afterwards via "
                f".{node.func.attr}(); mutate before publishing",
            )
