"""``lock-order``: deadlock cycles and locks held across forks/joins.

Built entirely on the call graph (:mod:`tools.analyze.callgraph`): the
checker contributes nothing during the per-file walk and reports from
:meth:`finalize`, after the whole-run graph exists.

Three rules:

**Ordering cycles.**  Every lock acquisition records the locks already
held (lexically, through nested ``with`` scopes); every call site
records the locks held when the call is made, and the callee's
*transitive* lock set (every lock it may take through any resolved call
chain) closes the ordering edge.  The edges form a directed graph over
lock tokens; any strongly connected component — ``A→B`` somewhere,
``B→A`` somewhere else — is a potential deadlock the moment two
threads interleave, and is reported once per cycle with the witnessing
edges.  Re-acquiring a non-reentrant lock (a self-edge) is the
degenerate cycle and deadlocks a single thread; RLock self-edges are
exempt.

**Held across fork.**  Forking while holding a lock copies the lock in
its *locked* state into the child, where no thread will ever release
it (PR 7's watchdog bug).  Reported for direct fork sites
(``os.fork``, ``Process(...).start()``) and for call sites whose
resolved callee transitively forks, including fork+exec spawns
(``subprocess.*`` — the window between fork and exec still inherits
the locked state).

**Held across blocking join.**  ``thread.join()`` under a lock the
joined thread needs is the classic one-lock deadlock; joining anything
while holding a lock at minimum stalls every other acquirer for the
join's duration.  Reported at the join site.

Lock identity is class-scoped (all instances of ``C`` share the token
for ``C._lock``), which is the standard abstraction: it reports the
two-instance interleaving the same as the one-instance one and keeps
tokens stable across files.
"""

from __future__ import annotations

from tools.analyze.driver import AnalysisResult, Checker, Finding

__all__ = ["LockOrderChecker"]


def _short(token: str) -> str:
    """``repro.serve.workers.MultiProcessServer._lock`` → the readable
    tail ``MultiProcessServer._lock``."""
    parts = token.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else token


class LockOrderChecker(Checker):
    name = "lock-order"
    description = ("lock-ordering cycles (potential deadlocks) and "
                   "locks held across fork/spawn/join")
    interests = ()
    needs_callgraph = True

    def finalize(self, result: AnalysisResult) -> None:
        graph = result.callgraph
        if graph is None:
            return
        # (held, acquired) -> (rel, lineno, witness text); first wins.
        edges: dict[tuple[str, str], tuple[str, int, str]] = {}
        reentrant: set[str] = set()
        for summary in graph.functions.values():
            for acq in summary.acquires:
                if acq.reentrant:
                    reentrant.add(acq.token)
        for summary in graph.functions.values():
            in_scope = self.config.wants(summary.rel)
            for acq in summary.acquires:
                for held in acq.held:
                    if held == acq.token and acq.token in reentrant:
                        continue
                    edges.setdefault((held, acq.token), (
                        summary.rel, acq.lineno,
                        f"{summary.qualname}() takes "
                        f"{_short(acq.token)} while holding "
                        f"{_short(held)}",
                    ))
            for site in summary.calls:
                if not site.held:
                    continue
                if site.blocking_join and in_scope:
                    self._report(result, summary.rel, site.lineno,
                                 "blocking join() while holding "
                                 + ", ".join(_short(t)
                                             for t in site.held)
                                 + "; every other acquirer stalls for "
                                   "the join's duration (deadlock if "
                                   "the joined thread needs the lock)")
                for callee in graph.resolve_call(site):
                    for token in graph.transitive_locks(callee.key):
                        for held in site.held:
                            if held == token and token in reentrant:
                                continue
                            edges.setdefault((held, token), (
                                summary.rel, site.lineno,
                                f"{summary.qualname}() calls "
                                f"{callee.qualname}() holding "
                                f"{_short(held)}; the callee may take "
                                f"{_short(token)}",
                            ))
                    forks = graph.transitive_forks(callee.key)
                    if forks and in_scope:
                        kinds = sorted({fork.kind for fork in forks})
                        self._report(
                            result, summary.rel, site.lineno,
                            f"call to {callee.qualname}() "
                            f"{'/'.join(kinds)}s while holding "
                            + ", ".join(_short(t) for t in site.held)
                            + "; a fork-inherited lock is copied in "
                              "its locked state and never released "
                              "in the child",
                        )
            for fork in summary.forks:
                if fork.held and in_scope:
                    self._report(
                        result, summary.rel, fork.lineno,
                        f"{fork.kind} while holding "
                        + ", ".join(_short(t) for t in fork.held)
                        + "; the child inherits the lock locked "
                          "forever (and fork+exec stalls the "
                          "pre-exec window)",
                    )
        self._report_cycles(result, edges)

    # ------------------------------------------------------------------
    def _report_cycles(
            self, result: AnalysisResult,
            edges: dict[tuple[str, str], tuple[str, int, str]]) -> None:
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for component in _sccs(graph):
            if len(component) == 1:
                token = next(iter(component))
                if (token, token) not in edges:
                    continue
            witness = sorted(
                (edges[(a, b)], (a, b))
                for a in component for b in component
                if (a, b) in edges
            )
            (rel, lineno, _), _ = witness[0]
            texts = "; ".join(entry[0][2] for entry in witness)
            cycle = " -> ".join(_short(t) for t in sorted(component))
            if len(component) == 1:
                message = (f"non-reentrant lock {cycle} may be "
                           f"re-acquired while already held "
                           f"(single-thread deadlock): {texts}")
            else:
                message = (f"lock-ordering cycle between {cycle} "
                           f"(potential deadlock under "
                           f"interleaving): {texts}")
            if self.config.wants(rel):
                self._report(result, rel, lineno, message)

    def _report(self, result: AnalysisResult, rel: str, lineno: int,
                message: str) -> None:
        result.findings.append(Finding(
            path=rel, line=lineno, col=1, checker=self.name,
            message=message,
        ))


def _sccs(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's strongly connected components, iteratively."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, iter]] = [(root, iter(graph[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components
