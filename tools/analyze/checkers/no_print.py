"""``no-print``: no bare ``print()`` outside the designated emitters.

The library communicates through logging (module loggers, NullHandler
on the package root) and return values; printing belongs to the
designated emitters only — the CLI surface, the ASCII renderers and the
standalone benchmark tools, all listed in the checker's ``allow``
prefixes in ``pyproject.toml``.  Walking the AST (rather than grepping)
avoids false positives on docstring examples.

Ported from the retired ``tools/lint_no_print.py``.
"""

from __future__ import annotations

import ast

from tools.analyze.driver import Checker, FileContext

__all__ = ["NoPrintChecker"]


class NoPrintChecker(Checker):
    name = "no-print"
    description = ("bare print() outside the designated emitters "
                   "(use logging)")
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self, node,
                "bare print() call outside the designated emitters; "
                "use a module logger (or add the file to the checker's "
                "allow list if it is a new emitter)",
            )
