"""``obs-catalogue``: the declared observability vocabulary stays true.

The run-report / dashboard contract of ``repro.obs`` is its *names*: a
metric renamed at one emitter silently breaks every consumer.  This
cross-file pass extracts every metric and span name passed to the obs
layer — string literals and f-string templates (``f"serve.{endpoint}"``
becomes the pattern ``serve.{endpoint}``) — at the emitter call sites
(``metrics.inc`` / ``set_gauge`` / ``observe`` / ``timed``, and
``trace`` / ``Span`` / ``RunCapture`` for spans) and diffs them against
the checked-in catalogue :mod:`repro.obs.catalogue`.  A metric emitted
with a ``labels={...}`` literal is recorded as a *labeled series* —
``observe("serve.request_seconds", t, labels={"endpoint": e})``
becomes the name ``serve.request_seconds{endpoint}`` (label *keys*
only, sorted), which the catalogue must declare verbatim:

* a name **emitted but not declared** fails (declare it, with a
  description, in the catalogue);
* a name **declared but never emitted** fails (the instrument is dead —
  remove it or re-instrument);
* a name emitted with a **different kind** than declared fails
  (``inc`` on something declared as a gauge);
* the metric table in ``docs/observability.md`` (between the
  ``<!-- obs-catalogue:metrics:begin/end -->`` markers) must match the
  catalogue row for row.

Generator mode (``python -m tools.analyze --fix``) rewrites the
catalogue from the observed usages — preserving existing descriptions,
inserting ``TODO: describe`` for new names, dropping orphans — and
regenerates the docs table from the catalogue.  Orphan and docs-drift
findings are only reported on complete runs (``--all``), never when
pre-commit hands the analyzer a file subset.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from tools.analyze.driver import (
    AnalysisResult,
    Checker,
    FileContext,
    Finding,
)

__all__ = ["ObsCatalogueChecker"]

#: obs emitter -> the instrument kind its first argument names.
_METRIC_KINDS = {
    "inc": "counter",
    "set_gauge": "gauge",
    "observe": "histogram",
    "timed": "histogram",
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

_SPAN_FUNCS = {"trace", "Span", "RunCapture"}

_MARKER_BEGIN = "<!-- obs-catalogue:metrics:begin -->"
_MARKER_END = "<!-- obs-catalogue:metrics:end -->"

_DEFAULT_CATALOGUE = "src/repro/obs/catalogue.py"
_DEFAULT_DOCS = "docs/observability.md"

_TODO = "TODO: describe"


@dataclass(frozen=True)
class _Usage:
    name: str       # literal, or a template like "serve.{endpoint}"
    kind: str       # counter | gauge | histogram | span
    rel: str
    line: int
    col: int


def _literal_name(arg: ast.expr) -> str | None:
    """A string literal or f-string template, else ``None``."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts: list[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue):
                parts.append("{" + ast.unparse(piece.value) + "}")
        return "".join(parts)
    return None


def _label_keys(node: ast.Call) -> list[str] | None:
    """Sorted constant keys of a ``labels={...}`` literal, or ``None``.

    A dynamic ``labels=`` argument (a variable, unpacking, non-string
    keys) yields ``None`` and the usage falls back to the base name —
    the call site then answers for the unlabeled declaration.
    """
    for keyword in node.keywords:
        if keyword.arg != "labels":
            continue
        value = keyword.value
        if isinstance(value, ast.Dict) and value.keys and all(
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                for key in value.keys):
            return sorted(key.value for key in value.keys)
        return None
    return None


def _pattern_regex(name: str) -> re.Pattern | None:
    """A declared template name as a regex, or ``None`` for literals."""
    if "{" not in name:
        return None
    out: list[str] = []
    for token in re.split(r"(\{[^}]*\})", name):
        if token.startswith("{") and token.endswith("}"):
            out.append(r"[^.]+")
        else:
            out.append(re.escape(token))
    return re.compile("".join(out) + r"\Z")


class ObsCatalogueChecker(Checker):
    name = "obs-catalogue"
    description = ("metric/span names emitted to repro.obs must match "
                   "the checked-in catalogue (and the docs table)")
    interests = (ast.Call,)

    def __init__(self, config, analysis):
        super().__init__(config, analysis)
        self.catalogue_rel = config.options.get(
            "catalogue", _DEFAULT_CATALOGUE
        )
        self.docs_rel = config.options.get("docs", _DEFAULT_DOCS)
        self.usages: list[_Usage] = []

    # ------------------------------------------------------------------
    # Collection (per file)
    # ------------------------------------------------------------------
    def wants(self, rel: str) -> bool:
        # The catalogue itself declares names, it does not emit them.
        if rel == self.catalogue_rel:
            return False
        return super().wants(rel)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None or not resolved.startswith("repro.obs"):
            return
        tail = resolved.split(".")[-1]
        if tail in _METRIC_KINDS:
            kind = _METRIC_KINDS[tail]
        elif tail in _SPAN_FUNCS:
            kind = "span"
        else:
            return
        if not node.args:
            return
        name = _literal_name(node.args[0])
        if name is None:
            return  # dynamic name: the call site is the declaration's job
        if kind != "span":
            keys = _label_keys(node)
            if keys:
                name = f"{name}{{{','.join(keys)}}}"
        self.usages.append(_Usage(
            name=name, kind=kind, rel=ctx.rel,
            line=node.lineno, col=node.col_offset + 1,
        ))

    # ------------------------------------------------------------------
    # Cross-file diff
    # ------------------------------------------------------------------
    def finalize(self, result: AnalysisResult) -> None:
        declared = self._load_catalogue(result)
        if declared is None:
            return  # already reported
        metrics, spans, key_lines = declared
        used: set[str] = set()
        patterns = {
            name: regex for name in {**metrics, **dict.fromkeys(spans)}
            if (regex := _pattern_regex(name)) is not None
        }
        for usage in self.usages:
            table = spans if usage.kind == "span" else metrics
            if usage.name in table:
                used.add(usage.name)
                if usage.kind != "span":
                    declared_kind = metrics[usage.name][0]
                    if declared_kind != usage.kind:
                        result.findings.append(Finding(
                            path=usage.rel, line=usage.line,
                            col=usage.col, checker=self.name,
                            message=(
                                f"metric {usage.name!r} emitted as a "
                                f"{usage.kind} but declared as a "
                                f"{declared_kind} in "
                                f"{self.catalogue_rel}"),
                        ))
                continue
            matched = next(
                (name for name, regex in patterns.items()
                 if name in table and regex.fullmatch(usage.name)),
                None,
            )
            if matched is not None:
                used.add(matched)
                continue
            kind_word = ("span" if usage.kind == "span"
                         else f"{usage.kind} metric")
            result.findings.append(Finding(
                path=usage.rel, line=usage.line, col=usage.col,
                checker=self.name,
                message=(
                    f"undeclared {kind_word} name {usage.name!r}; "
                    f"declare it in {self.catalogue_rel} "
                    "(python -m tools.analyze --fix regenerates the "
                    "catalogue and the docs table)"),
                fixable=True,
            ))
        if not result.complete:
            return  # a file subset cannot prove a name is orphaned
        for name in sorted(set(metrics) | set(spans)):
            if name in used:
                continue
            result.findings.append(Finding(
                path=self.catalogue_rel,
                line=key_lines.get(name, 1), col=1, checker=self.name,
                message=(
                    f"catalogue declares {name!r} but no instrumented "
                    "code emits it; remove the entry or restore the "
                    "instrumentation"),
                fixable=True,
            ))
        self._check_docs(result, metrics)

    # ------------------------------------------------------------------
    def _load_catalogue(self, result: AnalysisResult):
        path = result.repo_root / self.catalogue_rel
        if not path.is_file():
            result.findings.append(Finding(
                path=self.catalogue_rel, line=1, col=1,
                checker=self.name,
                message=("observability catalogue missing; create it "
                         "with python -m tools.analyze --fix"),
                fixable=True,
            ))
            return None
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as error:
            result.findings.append(Finding(
                path=self.catalogue_rel, line=error.lineno or 1, col=1,
                checker=self.name,
                message=f"catalogue does not parse: {error.msg}",
            ))
            return None
        metrics: dict[str, tuple[str, str]] = {}
        spans: dict[str, str] = {}
        key_lines: dict[str, int] = {}
        for node in tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not isinstance(target, ast.Name) or node.value is None:
                continue
            if target.id not in ("METRICS", "SPANS"):
                continue
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                result.findings.append(Finding(
                    path=self.catalogue_rel, line=node.lineno, col=1,
                    checker=self.name,
                    message=(f"{target.id} must be a literal dict "
                             "(the generator maintains it)"),
                ))
                continue
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant):
                        key_lines[key.value] = key.lineno
            if target.id == "METRICS":
                metrics = {
                    name: (str(entry[0]), str(entry[1]))
                    for name, entry in value.items()
                }
            else:
                spans = {name: str(desc)
                         for name, desc in value.items()}
        return metrics, spans, key_lines

    def _check_docs(self, result: AnalysisResult,
                    metrics: dict[str, tuple[str, str]]) -> None:
        path = result.repo_root / self.docs_rel
        if not path.is_file():
            return
        text = path.read_text()
        if _MARKER_BEGIN not in text or _MARKER_END not in text:
            result.findings.append(Finding(
                path=self.docs_rel, line=1, col=1, checker=self.name,
                message=(
                    f"docs file lacks the {_MARKER_BEGIN} / "
                    f"{_MARKER_END} markers around the metric table"),
                fixable=True,
            ))
            return
        block = text.split(_MARKER_BEGIN, 1)[1].split(_MARKER_END, 1)[0]
        if block.strip() != _render_table(metrics).strip():
            line = text[:text.index(_MARKER_BEGIN)].count("\n") + 1
            result.findings.append(Finding(
                path=self.docs_rel, line=line, col=1, checker=self.name,
                message=("metric table out of sync with the catalogue; "
                         "regenerate with python -m tools.analyze "
                         "--fix"),
                fixable=True,
            ))

    # ------------------------------------------------------------------
    # Generator mode
    # ------------------------------------------------------------------
    def apply_fix(self, result: AnalysisResult) -> list[str]:
        if not result.complete:
            return []  # never regenerate from a partial view
        if not any(f.checker == self.name and f.fixable
                   for f in result.findings):
            return []
        old_metrics: dict[str, tuple[str, str]] = {}
        old_spans: dict[str, str] = {}
        loaded = self._load_catalogue(
            AnalysisResult(repo_root=result.repo_root, checkers=[])
        )
        if loaded is not None:
            old_metrics, old_spans, _ = loaded
        metrics: dict[str, tuple[str, str]] = {}
        spans: dict[str, str] = {}
        for usage in self.usages:
            if usage.kind == "span":
                covered = any(
                    name == usage.name or (
                        (regex := _pattern_regex(name)) is not None
                        and regex.fullmatch(usage.name))
                    for name in {**dict.fromkeys(old_spans), **spans}
                )
                if usage.name in old_spans:
                    spans[usage.name] = old_spans[usage.name]
                elif not covered:
                    spans[usage.name] = _TODO
            else:
                covered = any(
                    name == usage.name or (
                        (regex := _pattern_regex(name)) is not None
                        and regex.fullmatch(usage.name))
                    for name in {**old_metrics, **metrics}
                )
                if usage.name in old_metrics:
                    metrics[usage.name] = (
                        usage.kind, old_metrics[usage.name][1]
                    )
                elif not covered:
                    metrics[usage.name] = (usage.kind, _TODO)
        # Keep declared template entries that usages matched.
        for name, entry in old_metrics.items():
            if name in metrics:
                continue
            regex = _pattern_regex(name)
            if regex is not None and any(
                    regex.fullmatch(u.name) for u in self.usages
                    if u.kind != "span"):
                metrics[name] = entry
        for name, desc in old_spans.items():
            if name in spans:
                continue
            regex = _pattern_regex(name)
            if regex is not None and any(
                    regex.fullmatch(u.name) for u in self.usages
                    if u.kind == "span"):
                spans[name] = desc
        changed: list[str] = []
        catalogue_path = result.repo_root / self.catalogue_rel
        rendered = _render_catalogue(metrics, spans)
        if (not catalogue_path.is_file()
                or catalogue_path.read_text() != rendered):
            catalogue_path.write_text(rendered)
            changed.append(self.catalogue_rel)
        docs_path = result.repo_root / self.docs_rel
        if docs_path.is_file():
            text = docs_path.read_text()
            if _MARKER_BEGIN in text and _MARKER_END in text:
                head, rest = text.split(_MARKER_BEGIN, 1)
                _, tail = rest.split(_MARKER_END, 1)
                updated = (head + _MARKER_BEGIN + "\n"
                           + _render_table(metrics) + "\n"
                           + _MARKER_END + tail)
                if updated != text:
                    docs_path.write_text(updated)
                    changed.append(self.docs_rel)
        return changed


def _render_table(metrics: dict[str, tuple[str, str]]) -> str:
    lines = ["| name | kind | meaning |", "|---|---|---|"]
    for name in sorted(metrics):
        kind, description = metrics[name]
        lines.append(f"| `{name}` | {kind} | {description} |")
    return "\n".join(lines)


def _render_catalogue(metrics: dict[str, tuple[str, str]],
                      spans: dict[str, str]) -> str:
    out = [
        '"""The declared observability vocabulary: every metric and '
        'span name.',
        "",
        "Instrumented code may only emit names declared here; the",
        "``obs-catalogue`` pass of ``python -m tools.analyze`` fails "
        "CI on any",
        "drift in either direction, and ``python -m tools.analyze "
        "--fix``",
        "regenerates this module (preserving descriptions) plus the "
        "metric",
        "table in ``docs/observability.md``.  Names containing "
        "``{...}`` are",
        "templates matching one dotted-name segment "
        "(``serve.requests_{endpoint}``);",
        "names ending in ``{key,...}`` declare labeled series — the "
        "call site",
        "passes ``labels={...}`` with exactly those keys "
        "(``serve.request_seconds{endpoint}``).",
        '"""',
        "",
        "from __future__ import annotations",
        "",
        '__all__ = ["METRICS", "SPANS"]',
        "",
        "#: metric name -> (kind, meaning); kinds: counter | gauge | "
        "histogram.",
        "METRICS: dict[str, tuple[str, str]] = {",
    ]
    for name in sorted(metrics):
        kind, description = metrics[name]
        out.append(f"    {name!r}:")
        out.append(f"        ({kind!r},")
        out.append(f"         {description!r}),")
    out.append("}")
    out.append("")
    out.append("#: span name -> meaning (see the span tree in "
               "docs/observability.md).")
    out.append("SPANS: dict[str, str] = {")
    for name in sorted(spans):
        out.append(f"    {name!r}:")
        out.append(f"        {spans[name]!r},")
    out.append("}")
    return "\n".join(out) + "\n"
