"""``resource-lifetime``: creation to guaranteed release, on all paths.

A per-function abstract interpretation (no call graph needed): locals
bound to resource constructors — ``open()``/``tempfile.*`` files,
``socket.socket()``, ``SharedMemory(...)``, ``threading.Thread(...)``
— are tracked through branches, loops and ``try/finally`` to one of
three ends:

* **released** — ``close()`` (``join()`` for threads) ran on every
  path, or the value was ``with``-managed;
* **escaped** — returned, yielded, stored on an attribute or into a
  container, passed to another call (including
  ``weakref.finalize(...)``, the sanctioned deferred-close idiom in
  ``serve/workers.py``), or captured by a nested function: ownership
  left this frame and the frame owes nothing;
* **leaked** — still open on some path with no escape: reported at the
  creation site.

Double release is reported at the second call when the first is
certain (ran on *every* path to it).  Threads are exempt when
``daemon=True`` (the interpreter does not wait for them, by design —
the repo's drain/stopper threads) or never started.

One rule is deliberately sharper than plain leak tracking, encoding
PR 7's shared-memory regression: calling ``shm.close()`` after a view
of ``shm.buf`` (``np.ndarray(buffer=shm.buf)``, or binding ``shm.buf``
itself) has *escaped* unmaps the buffer under the view — the exported
BufferError / use-after-unmap crash.  The fix the repo uses is
deferring the close until the views die (``weakref.finalize`` on the
view), which this checker recognises as an escape, not a leak.

Limitations, by design: attribute-held resources (``self._handle``)
belong to the owning object's lifecycle, not a frame, and are out of
scope; no implicit exception edges (an explicit ``raise`` terminates a
path silently — guarding against *errors* is ``try/finally``'s job and
enforcing it everywhere would drown real leaks); aliasing
(``b = a``) conservatively counts as an escape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.analyze.driver import Checker, FileContext

__all__ = ["ResourceLifetimeChecker"]

#: resolved constructor name -> resource kind
_CTORS = {
    "open": "file",
    "io.open": "file",
    "os.fdopen": "file",
    "gzip.open": "file",
    "bz2.open": "file",
    "lzma.open": "file",
    "tempfile.TemporaryFile": "file",
    "tempfile.NamedTemporaryFile": "file",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "socket.create_server": "socket",
    "multiprocessing.shared_memory.SharedMemory": "shm",
    "multiprocessing.SharedMemory": "shm",
    "threading.Thread": "thread",
}

_RELEASES = {
    "file": ("close",),
    "socket": ("close",),
    "shm": ("close",),
    "thread": ("join",),
}

_NOUN = {
    "file": "file handle",
    "socket": "socket",
    "shm": "SharedMemory block",
    "thread": "thread",
}


@dataclass
class _Res:
    kind: str
    name: str
    lineno: int
    #: possible lifecycle states on the paths reaching here
    states: set = field(default_factory=lambda: {"open"})
    escaped: bool = False
    managed: bool = False        # with-statement owns the release
    #: threads: has start() run / daemon= literal
    started: bool = False
    daemon: bool | None = None
    #: shm: a view over .buf escaped this frame
    views_escape: bool = False
    #: shm: unlink() already ran on every path
    unlinked: bool = False
    #: shm: close() ran while views were live but not yet escaped;
    #: line of that close, reported if a view escapes afterwards
    closed_under_views: int | None = None

    def clone(self) -> "_Res":
        copy = _Res(self.kind, self.name, self.lineno,
                    set(self.states), self.escaped, self.managed,
                    self.started, self.daemon, self.views_escape,
                    self.unlinked, self.closed_under_views)
        return copy


class _Env:
    def __init__(self) -> None:
        self.vars: dict[str, _Res] = {}
        #: view variable -> shm variable it aliases
        self.views: dict[str, str] = {}
        self.terminated = False

    def clone(self) -> "_Env":
        copy = _Env()
        copy.vars = {name: res.clone()
                     for name, res in self.vars.items()}
        copy.views = dict(self.views)
        copy.terminated = self.terminated
        return copy

    def merge(self, other: "_Env") -> "_Env":
        """Join two branch outcomes; terminated branches contribute
        nothing to the survivor's state."""
        if self.terminated and not other.terminated:
            return other
        if other.terminated and not self.terminated:
            return self
        merged = _Env()
        merged.terminated = self.terminated and other.terminated
        for name in set(self.vars) | set(other.vars):
            a, b = self.vars.get(name), other.vars.get(name)
            if a is None or b is None:
                merged.vars[name] = (a or b).clone()
                continue
            joined = a.clone()
            joined.states |= b.states
            joined.escaped = a.escaped or b.escaped
            joined.managed = a.managed and b.managed
            joined.started = a.started or b.started
            joined.views_escape = a.views_escape or b.views_escape
            joined.unlinked = a.unlinked and b.unlinked
            joined.closed_under_views = (a.closed_under_views
                                         or b.closed_under_views)
            merged.vars[name] = joined
        merged.views = {**other.views, **self.views}
        return merged


class ResourceLifetimeChecker(Checker):
    name = "resource-lifetime"
    description = ("resources (files, sockets, SharedMemory, threads) "
                   "released or escaped on every path; double-close; "
                   "SHM closed under live views")
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        walker = _FunctionWalker(self, ctx)
        env = _Env()
        for stmt in node.body:
            env = walker.exec_stmt(stmt, env)
        if not env.terminated:
            walker.leak_check(env)

    # Called by the walker; kept on the checker so fixtures and tests
    # exercise one reporting path.
    def leak(self, ctx: FileContext, res: _Res) -> None:
        if res.kind == "thread":
            message = (f"thread {res.name!r} started here is never "
                       f"join()ed on some path and never escapes; "
                       f"pass daemon=True or join it")
        else:
            release = "/".join(_RELEASES[res.kind])
            message = (f"{_NOUN[res.kind]} {res.name!r} opened here "
                       f"is not {release}()d on every path and never "
                       f"escapes this function")
        ctx.findings.append(_finding(ctx, self, res.lineno, message))


def _finding(ctx: FileContext, checker: Checker, lineno: int,
             message: str):
    from tools.analyze.driver import Finding
    return Finding(path=ctx.rel, line=lineno, col=1,
                   checker=checker.name, message=message)


class _FunctionWalker:
    def __init__(self, checker: ResourceLifetimeChecker,
                 ctx: FileContext):
        self.checker = checker
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: ast.stmt, env: _Env) -> _Env:
        if env.terminated:
            return env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested scope: anything it references is captured and may
            # outlive this frame - an escape, exactly like the
            # _view_collected closures in serve/workers.py.
            self._escape_names(stmt, env)
            return env
        if isinstance(stmt, ast.Assign):
            return self._exec_assign(stmt, env)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                fake = ast.Assign(targets=[stmt.target],
                                  value=stmt.value)
                ast.copy_location(fake, stmt)
                return self._exec_assign(fake, env)
            return env
        if isinstance(stmt, ast.Expr):
            self._eval_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape_value(stmt.value, env)
                self._eval_expr(stmt.value, env)
            self.leak_check(env)
            env.terminated = True
            return env
        if isinstance(stmt, (ast.Raise, ast.Continue, ast.Break)):
            # Explicit non-fall-through: paths end here without a leak
            # verdict (error paths are try/finally's job; loop exits
            # re-merge at the loop, approximated below).
            env.terminated = True
            return env
        if isinstance(stmt, ast.If):
            return self._exec_branches(stmt.test, [stmt.body],
                                       stmt.orelse, env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval_expr(stmt.iter, env)
            return self._exec_loop(stmt.body, stmt.orelse, env)
        if isinstance(stmt, ast.While):
            self._eval_expr(stmt.test, env)
            return self._exec_loop(stmt.body, stmt.orelse, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, env)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, env)
        if isinstance(stmt, (ast.Assert, ast.AugAssign, ast.Delete,
                             ast.Global, ast.Nonlocal, ast.Pass,
                             ast.Import, ast.ImportFrom)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval_expr(child, env)
            return env
        # Anything else: evaluate embedded expressions conservatively.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval_expr(child, env)
        return env

    def _exec_body(self, body: list[ast.stmt], env: _Env) -> _Env:
        for stmt in body:
            env = self.exec_stmt(stmt, env)
        return env

    def _exec_branches(self, test: ast.expr, bodies, orelse,
                       env: _Env) -> _Env:
        self._eval_expr(test, env)
        outcomes = [self._exec_body(body, env.clone())
                    for body in bodies]
        outcomes.append(self._exec_body(orelse, env.clone())
                        if orelse else env.clone())
        merged = outcomes[0]
        for outcome in outcomes[1:]:
            merged = merged.merge(outcome)
        return merged

    def _exec_loop(self, body, orelse, env: _Env) -> _Env:
        # One symbolic iteration merged with the zero-iteration path;
        # break/continue approximate to path ends inside the body.
        once = self._exec_body(body, env.clone())
        merged = env.merge(once)
        if orelse:
            merged = self._exec_body(orelse, merged)
        return merged

    def _exec_with(self, stmt, env: _Env) -> _Env:
        for item in stmt.items:
            expr = item.context_expr
            kind = self._ctor_kind(expr)
            bound = (item.optional_vars.id
                     if isinstance(item.optional_vars, ast.Name)
                     else None)
            if kind is not None and bound is not None:
                res = _Res(kind, bound, expr.lineno, managed=True)
                if kind == "thread":
                    res.daemon = self._daemon_kwarg(expr)
                env.vars[bound] = res
            elif (isinstance(expr, ast.Name)
                  and expr.id in env.vars):
                env.vars[expr.id].managed = True
            else:
                self._eval_expr(expr, env)
        env = self._exec_body(stmt.body, env)
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                res = env.vars.get(item.optional_vars.id)
                if res is not None and res.managed:
                    res.states = {"closed"}
            elif (isinstance(item.context_expr, ast.Name)
                  and item.context_expr.id in env.vars):
                res = env.vars[item.context_expr.id]
                if res.managed:
                    res.states = {"closed"}
        return env

    def _exec_try(self, stmt: ast.Try, env: _Env) -> _Env:
        pre = env.clone()
        after_body = self._exec_body(stmt.body, env)
        outcomes = [after_body]
        for handler in stmt.handlers:
            # The handler runs from the *pre-body* state: a resource
            # whose constructor raised was never created, so treating
            # body-created values as live here would report phantom
            # leaks when the handler retries the construction (the
            # stale-block recovery in serve/workers.publish_tables).
            basis = pre.clone()
            basis.terminated = False
            outcomes.append(self._exec_body(handler.body, basis))
        merged = outcomes[0]
        for outcome in outcomes[1:]:
            merged = merged.merge(outcome)
        if stmt.orelse and not after_body.terminated:
            merged = merged.merge(
                self._exec_body(stmt.orelse, after_body.clone()))
        if stmt.finalbody:
            terminated = merged.terminated
            merged.terminated = False
            merged = self._exec_body(stmt.finalbody, merged)
            merged.terminated = merged.terminated or terminated
        return merged

    # ------------------------------------------------------------------
    # Assignments and expressions
    # ------------------------------------------------------------------
    def _exec_assign(self, stmt: ast.Assign, env: _Env) -> _Env:
        value = stmt.value
        simple = (len(stmt.targets) == 1
                  and isinstance(stmt.targets[0], ast.Name))
        if simple:
            name = stmt.targets[0].id
            kind = self._ctor_kind(value)
            if kind is not None:
                self._rebind_check(env, name)
                res = _Res(kind, name, stmt.lineno)
                if kind == "thread":
                    res.daemon = self._daemon_kwarg(value)
                env.vars[name] = res
                env.views.pop(name, None)
                return env
            shm = self._view_source(value, env)
            if shm is not None:
                env.views[name] = shm
                return env
            if isinstance(value, ast.Name) and value.id in env.vars:
                # Aliasing: ownership now ambiguous - treat as escape.
                env.vars[value.id].escaped = True
                env.views.pop(name, None)
                return env
            self._eval_expr(value, env)
            if name in env.vars:
                # Rebound over a live resource: the old value leaks
                # unless it was already closed or escaped.
                self._rebind_check(env, name)
                del env.vars[name]
            env.views.pop(name, None)
            return env
        # Attribute/subscript/tuple targets: stored values escape.
        self._escape_value(value, env)
        self._eval_expr(value, env)
        return env

    def _rebind_check(self, env: _Env, name: str) -> None:
        old = env.vars.get(name)
        if (old is not None and not old.escaped and not old.managed
                and "open" in old.states
                and not (old.kind == "thread" and not old.started)):
            self.checker.leak(self.ctx, old)

    def _eval_expr(self, expr: ast.expr, env: _Env) -> None:
        """Walk an expression for calls, escapes and releases."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._eval_call(node, env)
            elif isinstance(node, (ast.Lambda,)):
                self._escape_names(node, env)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    self._escape_value(node.value, env)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set,
                                   ast.Dict)):
                for child in ast.iter_child_nodes(node):
                    self._escape_value(child, env, container=True)

    def _eval_call(self, call: ast.Call, env: _Env) -> None:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in env.vars):
            res = env.vars[func.value.id]
            method = func.attr
            if self._handle_release(call, res, method, env):
                return
        # Any tracked value passed as an argument escapes; a view
        # passed along (weakref.finalize, callbacks) escapes too.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._escape_value(arg, env)

    def _handle_release(self, call: ast.Call, res: _Res,
                        method: str, env: _Env) -> bool:
        if res.kind == "thread":
            if method == "start":
                res.started = True
                return True
            if method == "join":
                if res.states == {"closed"} and not res.escaped:
                    self._double(call, res, "join")
                res.states = {"closed"}
                return True
            return False
        if res.kind == "shm" and method == "unlink":
            if res.unlinked and not res.escaped:
                self._double(call, res, "unlink")
            res.unlinked = True
            return True
        if method in _RELEASES[res.kind]:
            if (res.kind == "shm" and res.views_escape
                    and not res.escaped):
                self._report_close_under_views(res, call.lineno)
            elif (res.kind == "shm" and not res.escaped
                    and any(s == res.name for s in env.views.values())):
                # Views are live but have not escaped *yet*; if one
                # escapes later (e.g. returned after the close) the
                # bug is the same, so remember where the close was.
                res.closed_under_views = call.lineno
            if (res.states == {"closed"} and not res.escaped
                    and not res.managed):
                self._double(call, res, method)
            res.states = {"closed"}
            return True
        return False

    def _report_close_under_views(self, res: _Res,
                                  lineno: int) -> None:
        self.ctx.findings.append(_finding(
            self.ctx, self.checker, lineno,
            f"SharedMemory {res.name!r} closed while views "
            f"over its buffer escape this function; the "
            f"mapping is unmapped under the view "
            f"(BufferError / use-after-unmap) - defer the "
            f"close until the views die "
            f"(weakref.finalize) or drop the views first",
        ))

    def _double(self, call: ast.Call, res: _Res, method: str) -> None:
        self.ctx.findings.append(_finding(
            self.ctx, self.checker, call.lineno,
            f"{_NOUN[res.kind]} {res.name!r} {method}()d again; "
            f"already {method}()d on every path reaching this line",
        ))

    # ------------------------------------------------------------------
    # Escapes
    # ------------------------------------------------------------------
    def _escape_value(self, expr: ast.expr, env: _Env,
                      container: bool = False) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Name):
                continue
            res = env.vars.get(node.id)
            if res is not None:
                res.escaped = True
            shm = env.views.get(node.id)
            if shm is not None and shm in env.vars:
                self._mark_view_escape(env.vars[shm])

    def _escape_names(self, scope: ast.AST, env: _Env) -> None:
        for node in ast.walk(scope):
            if isinstance(node, ast.Name):
                res = env.vars.get(node.id)
                if res is not None:
                    res.escaped = True
                shm = env.views.get(node.id)
                if shm is not None and shm in env.vars:
                    self._mark_view_escape(env.vars[shm])

    def _mark_view_escape(self, res: _Res) -> None:
        res.views_escape = True
        if res.closed_under_views is not None:
            self._report_close_under_views(res, res.closed_under_views)
            res.closed_under_views = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _ctor_kind(self, expr: ast.expr) -> str | None:
        if not isinstance(expr, ast.Call):
            return None
        resolved = self.ctx.imports.resolve(expr.func)
        if resolved is None and isinstance(expr.func, ast.Name):
            resolved = expr.func.id if expr.func.id == "open" else None
        if resolved is None:
            return None
        return _CTORS.get(resolved)

    @staticmethod
    def _daemon_kwarg(call: ast.Call) -> bool | None:
        for kw in call.keywords:
            if kw.arg == "daemon" and isinstance(kw.value,
                                                ast.Constant):
                if isinstance(kw.value.value, bool):
                    return kw.value.value
        return None

    def _view_source(self, expr: ast.expr, env: _Env) -> str | None:
        """``np.ndarray(buffer=shm.buf)`` / ``shm.buf`` → ``shm``."""
        def buf_owner(node: ast.expr) -> str | None:
            if (isinstance(node, ast.Attribute) and node.attr == "buf"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in env.vars
                    and env.vars[node.value.id].kind == "shm"):
                return node.value.id
            return None

        direct = buf_owner(expr)
        if direct is not None:
            return direct
        if isinstance(expr, ast.Call):
            for arg in (list(expr.args)
                        + [kw.value for kw in expr.keywords]):
                for node in ast.walk(arg):
                    owner = buf_owner(node)
                    if owner is not None:
                        return owner
        if isinstance(expr, ast.Subscript):
            return self._view_source(expr.value, env)
        return None

    # ------------------------------------------------------------------
    def leak_check(self, env: _Env) -> None:
        for res in env.vars.values():
            if res.escaped or res.managed:
                continue
            if res.kind == "thread":
                if (res.started and res.daemon is not True
                        and "open" in res.states):
                    self.checker.leak(self.ctx, res)
                continue
            if "open" in res.states:
                self.checker.leak(self.ctx, res)
