"""``determinism``: reproducible randomness in the pipeline packages.

The paper's re-mining and verification guarantees (ARCS Sections 3.2
and 3.6) require bit-identical reruns, and the perf-budget harness
compares kernels that must agree exactly — so the pipeline packages may
never draw entropy from process-global state.  Inside the configured
roots (``src/repro/{core,binning,mining,perf,data}``) this checker
forbids:

* the legacy NumPy module-level RNG — any ``np.random.<fn>()`` call
  other than the ``default_rng`` / ``SeedSequence`` / ``Generator``
  constructors (``np.random.rand``, ``np.random.seed``, ... all share
  hidden global state);
* ``np.random.default_rng()`` **without a seed argument** — an unseeded
  generator is fresh entropy per call; seeding must flow through
  :mod:`repro.data.sampling` (``repeat_rng``), which is on the
  checker's allow list;
* the stdlib :mod:`random` module entirely (its global Mersenne
  twister is per-process state and its streams are not
  ``SeedSequence``-splittable).
"""

from __future__ import annotations

import ast

from tools.analyze.driver import Checker, FileContext

__all__ = ["DeterminismChecker"]

#: numpy.random attributes that are *not* the hidden-global-state RNG.
_SEEDABLE = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}


class DeterminismChecker(Checker):
    name = "determinism"
    description = ("global or unseeded RNG in the deterministic "
                   "pipeline packages")
    interests = (ast.Call, ast.Import, ast.ImportFrom)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    ctx.report(
                        self, node,
                        "stdlib 'random' imported in a deterministic "
                        "package; draw from a seeded numpy Generator "
                        "via repro.data.sampling instead",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if not node.level and node.module and (
                    node.module.split(".")[0] == "random"):
                ctx.report(
                    self, node,
                    "stdlib 'random' imported in a deterministic "
                    "package; draw from a seeded numpy Generator via "
                    "repro.data.sampling instead",
                )
            return
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        if resolved.startswith("random."):
            ctx.report(
                self, node,
                f"stdlib RNG call {resolved}(); deterministic packages "
                "must use a seeded numpy Generator",
            )
            return
        if not resolved.startswith("numpy.random."):
            return
        tail = resolved.split(".")[-1]
        if tail not in _SEEDABLE:
            ctx.report(
                self, node,
                f"legacy numpy global-state RNG {resolved}(); "
                "construct a seeded Generator "
                "(repro.data.sampling.repeat_rng) instead",
            )
        elif tail == "default_rng" and not node.args and not node.keywords:
            ctx.report(
                self, node,
                "np.random.default_rng() without a seed draws fresh OS "
                "entropy per call; pass a seed (seeding flows through "
                "repro.data.sampling)",
            )
