"""``no-wall-time``: no ``time.time()`` in library or benchmark code.

Durations measured with the wall clock jump with NTP slews and DST and
make perf numbers irreproducible; all timings must use the monotonic
``time.perf_counter()`` (what ``repro.obs`` is built on).  The only
legitimate use of ``time.time()`` is an absolute *timestamp* for humans
(e.g. a report's "generated at" field); waive those lines explicitly
with a trailing ``# wall-clock: ok`` comment (the generic
``# arcs-analyze: ignore[no-wall-time]`` works too).

The import map catches every spelling — ``time.time()``,
``import time as t; t.time()`` and ``from time import time; time()``.
Ported from the retired ``tools/lint_no_wall_time.py``.
"""

from __future__ import annotations

import ast

from tools.analyze.driver import Checker, FileContext

__all__ = ["NoWallTimeChecker"]

WAIVER = "# wall-clock: ok"


class NoWallTimeChecker(Checker):
    name = "no-wall-time"
    description = ("wall-clock timing calls (time.time()); durations "
                   "must use time.perf_counter()")
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.imports.resolve(node.func) != "time.time":
            return
        if WAIVER in ctx.line_text(node.lineno):
            return
        ctx.report(
            self, node,
            "time.time() call; use time.perf_counter() for durations, "
            f"or waive a genuine timestamp with '{WAIVER}'",
        )
