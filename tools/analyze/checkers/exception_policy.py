"""``exception-policy``: no swallowed errors, library error types at
the edges.

Three rules:

1. **No bare ``except:``** anywhere in the configured roots — it
   catches ``KeyboardInterrupt`` and ``SystemExit`` and hides every
   programming error.
2. **No silently swallowed broad catches**: an ``except Exception`` /
   ``except BaseException`` handler must either re-raise or record the
   error (a ``logger.exception(...)``-style call); a handler whose body
   is only ``pass``/``...`` — or that handles without logging — is a
   finding.  A deliberate boundary can be waived with
   ``# arcs-analyze: ignore[exception-policy]``.
3. **Public entry points raise library error types**: inside the
   ``raise-roots`` (the CLI surface and ``repro.serve``), a *public*
   function may not ``raise`` a builtin exception directly — callers
   should be able to catch the library's own error types
   (``PersistenceError``, ``ServiceError``, ``ModelNotFoundError``,
   ...), which may *subclass* builtins for compatibility.  The
   ``allow-raises`` option lists tolerated builtins (``SystemExit`` for
   CLI exits by default).  Functions whose name starts with a single
   underscore are internal and exempt; dunder methods are API.
"""

from __future__ import annotations

import ast
import builtins

from tools.analyze.driver import Checker, FileContext

__all__ = ["ExceptionPolicyChecker"]

#: Every builtin exception name (the things a library may not raise raw
#: from its public edges).
_BUILTIN_EXCEPTIONS = frozenset(
    name for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
)

_DEFAULT_ALLOW_RAISES = ("SystemExit", "KeyboardInterrupt",
                         "NotImplementedError", "StopIteration")

_LOG_METHODS = {"exception", "error", "warning", "critical", "log"}


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True  # dunder methods are API surface
    return not name.startswith("_")


def _is_broad(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return True
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return (isinstance(annotation, ast.Name)
            and annotation.id in ("Exception", "BaseException"))


def _handles_properly(handler: ast.ExceptHandler) -> bool:
    """A broad handler is acceptable if it re-raises or logs the error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _LOG_METHODS):
            return True
    return False


class ExceptionPolicyChecker(Checker):
    name = "exception-policy"
    description = ("bare/swallowed excepts; builtin exceptions raised "
                   "from public entry points")
    interests = (ast.ExceptHandler, ast.Raise)

    def __init__(self, config, analysis):
        super().__init__(config, analysis)
        self.raise_roots = tuple(
            config.options.get("raise-roots", ())
        )
        self.allow_raises = frozenset(
            config.options.get("allow-raises", _DEFAULT_ALLOW_RAISES)
        )

    def _in_raise_roots(self, rel: str) -> bool:
        for prefix in self.raise_roots:
            clean = prefix.rstrip("/")
            if rel == clean or rel.startswith(clean + "/"):
                return True
        return False

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, ast.ExceptHandler):
            self._check_handler(ctx, node)
        elif isinstance(node, ast.Raise):
            self._check_raise(ctx, node)

    # ------------------------------------------------------------------
    def _check_handler(self, ctx: FileContext,
                       node: ast.ExceptHandler) -> None:
        if node.type is None:
            ctx.report(
                self, node,
                "bare 'except:' catches SystemExit and "
                "KeyboardInterrupt; name the exceptions (or at minimum "
                "'except Exception')",
            )
            return
        if not _is_broad(node.type):
            return
        body_is_noop = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in node.body
        )
        if body_is_noop:
            ctx.report(
                self, node,
                "'except Exception: pass' silently swallows every "
                "error; narrow the exception types or handle the error",
            )
        elif not _handles_properly(node):
            ctx.report(
                self, node,
                "broad 'except Exception' that neither re-raises nor "
                "logs; narrow it to the exceptions this code can "
                "actually handle",
            )

    # ------------------------------------------------------------------
    def _check_raise(self, ctx: FileContext, node: ast.Raise) -> None:
        if not self._in_raise_roots(ctx.rel):
            return
        function = ctx.enclosing_function()
        if function is not None and not _is_public(function.name):
            return
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if not isinstance(exc, ast.Name):
            return  # re-raise, or an attribute like errors.XError
        name = exc.id
        if name in _BUILTIN_EXCEPTIONS and name not in self.allow_raises:
            ctx.report(
                self, node,
                f"public entry point raises builtin {name}; raise a "
                "library error type instead (subclassing the builtin "
                "keeps existing callers working)",
            )
