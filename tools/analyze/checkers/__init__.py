"""The built-in checker plugins, in the order they report."""

from tools.analyze.checkers.no_print import NoPrintChecker
from tools.analyze.checkers.no_wall_time import NoWallTimeChecker
from tools.analyze.checkers.concurrency import ConcurrencyChecker
from tools.analyze.checkers.determinism import DeterminismChecker
from tools.analyze.checkers.exception_policy import (
    ExceptionPolicyChecker,
)
from tools.analyze.checkers.obs_catalogue import ObsCatalogueChecker
from tools.analyze.checkers.lock_order import LockOrderChecker
from tools.analyze.checkers.fork_safety import ForkSafetyChecker
from tools.analyze.checkers.resource_lifetime import (
    ResourceLifetimeChecker,
)

__all__ = ["ALL_CHECKERS", "checker_classes"]

ALL_CHECKERS = (
    NoPrintChecker,
    NoWallTimeChecker,
    ConcurrencyChecker,
    DeterminismChecker,
    ExceptionPolicyChecker,
    ObsCatalogueChecker,
    LockOrderChecker,
    ForkSafetyChecker,
    ResourceLifetimeChecker,
)


def checker_classes(select: list[str] | None = None):
    """The registered checker classes, optionally filtered by name."""
    if select is None:
        return list(ALL_CHECKERS)
    known = {cls.name: cls for cls in ALL_CHECKERS}
    unknown = [name for name in select if name not in known]
    if unknown:
        raise ValueError(
            f"unknown checker(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(known))}"
        )
    return [known[name] for name in select]
