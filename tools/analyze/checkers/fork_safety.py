"""``fork-safety``: what the child inherits and what must be re-armed.

With the ``fork`` start method the child process is a byte-for-byte
copy of the parent at fork time: every lock keeps its held/free state,
every buffered writer keeps its unflushed bytes, every thread simply
*vanishes* (only the forking thread survives).  PR 7 hit all three in
production code; this checker codifies them as rules over the call
graph so the next subsystem gets the diagnosis before review.

**A — threads before fork, no re-arm.**  A module that both starts
threads and forks is exposed to the classic posture: a vanished thread
was mid-critical-section and its locks are now wedged in the child.
The sanctioned pattern is registering re-arm hooks once,
``os.register_at_fork(after_in_child=...)``, which recreates the locks
the child inherits.  Reported at the fork site when the fork's module
registers no such hook anywhere.

**B — fork-inherited locks acquired by the child, no re-arm.**  The
child entry point (``Process(target=f)``) transitively acquires a
class-scoped or module lock that parent-side code also acquires: if
the fork lands while the parent holds it, the child deadlocks on first
touch.  Same remedy, same hook exemption.

**C — closing a fork-copied sink.**  The child's copy of a buffered
module-global sink (event log, open file) shares the parent's
unflushed buffer; a child-side ``close()``/``flush()`` writes those
bytes a second time (PR 7's duplicated event lines).  The sanctioned
idiom is a *forgetter* — rebinding the module global **without**
closing (``forget_events()``) before installing a fresh one.  Reported
when the child's reachable closure closes a module global and no
forgetter for that global is reachable from the same entry point (and
no ``after_in_child`` hook is registered by the forking module).

**D — OS handles crossing the fork boundary via args.**  A file or
``SharedMemory`` object passed in ``Process(args=...)`` shares its
seek offset / mapping lifetime with the parent.  Pass *names* or
descriptors intended for sharing (sockets, pipes, queues are exempt —
pre-fork listener passing is the point of the pattern).

Rules A–C hinge on the *absence* of a hook or forgetter, so they are
gated on ``result.complete`` — a partial scan (pre-commit's staged
files) cannot prove absence and stays silent.  Rule D is positive
evidence and always fires.
"""

from __future__ import annotations

from tools.analyze.driver import AnalysisResult, Checker, Finding

__all__ = ["ForkSafetyChecker"]


class ForkSafetyChecker(Checker):
    name = "fork-safety"
    description = ("fork-inherited threads/locks/sinks without re-arm "
                   "hooks, and handles crossing the fork boundary")
    interests = ()
    needs_callgraph = True

    def finalize(self, result: AnalysisResult) -> None:
        graph = result.callgraph
        if graph is None:
            return
        module_registers: set[str] = set()
        module_threads: dict[str, list[tuple[str, int]]] = {}
        for summary in graph.functions.values():
            if summary.registers_at_fork:
                module_registers.add(summary.module)
            for lineno, _daemon in summary.thread_starts:
                module_threads.setdefault(summary.module, []).append(
                    (summary.qualname, lineno))
        for summary in graph.functions.values():
            if not self.config.wants(summary.rel):
                continue
            for fork in summary.forks:
                if fork.kind == "spawn":
                    continue  # fork+exec replaces the image: A-D moot
                for kind, name in fork.handle_args:
                    self._report(
                        result, summary.rel, fork.lineno,
                        f"{kind} handle {name!r} passed into the "
                        f"child via Process args; the copy shares "
                        f"the parent's offset/mapping lifetime - "
                        f"pass a name or reopen in the child",
                    )
                if not result.complete:
                    continue
                registered = summary.module in module_registers
                if not registered:
                    threads = module_threads.get(summary.module, [])
                    if threads:
                        where = ", ".join(
                            f"{qual}():{line}"
                            for qual, line in sorted(threads)[:3])
                        self._report(
                            result, summary.rel, fork.lineno,
                            f"process forks here but "
                            f"{summary.module} also starts threads "
                            f"({where}); forked children inherit any "
                            f"lock a vanished thread held - register "
                            f"os.register_at_fork(after_in_child=...) "
                            f"re-arm hooks",
                        )
                self._check_child(result, graph, summary, fork,
                                  registered)

    # ------------------------------------------------------------------
    def _check_child(self, result: AnalysisResult, graph, summary,
                     fork, registered: bool) -> None:
        if not fork.child_targets:
            return
        closure: set[str] = set()
        for target in fork.child_targets:
            if target.startswith("@"):
                continue  # unresolved (dotted/attr) entry point
            closure |= graph.reachable(target)
        if not closure:
            return
        # Rule B: fork-inherited locks the child re-acquires.
        if not registered:
            child_locks: set[str] = set()
            for target in fork.child_targets:
                if not target.startswith("@"):
                    child_locks |= graph.transitive_locks(target)
            parent_locks: set[str] = set()
            for other in graph.functions.values():
                if other.key in closure:
                    continue
                parent_locks.update(
                    acq.token for acq in other.acquires)
            shared = sorted(child_locks & parent_locks)
            if shared:
                names = ", ".join(
                    ".".join(t.split(".")[-2:]) for t in shared[:4])
                self._report(
                    result, summary.rel, fork.lineno,
                    f"child entry point re-acquires fork-inherited "
                    f"lock(s) {names} that parent-side code also "
                    f"holds; a fork landing inside the parent's "
                    f"critical section deadlocks the child - "
                    f"recreate them in an after_in_child hook",
                )
        # Rule C: closing a fork-copied buffered sink.
        if registered:
            return
        forgotten: set[tuple[str, str]] = set()
        closed: dict[tuple[str, str], tuple[str, int]] = {}
        for key in closure:
            reached = graph.functions.get(key)
            if reached is None:
                continue
            for name in reached.forgets_globals:
                forgotten.add((reached.module, name))
            for name in reached.closes_globals:
                closed.setdefault((reached.module, name),
                                  (reached.qualname, reached.lineno))
        for (module, name), (qual, _line) in sorted(closed.items()):
            if (module, name) in forgotten:
                continue
            self._report(
                result, summary.rel, fork.lineno,
                f"child entry point reaches {qual}(), which closes/"
                f"flushes module global {module}.{name}; the child's "
                f"copy shares the parent's unflushed buffer and "
                f"flushes it twice - drop the inherited instance "
                f"first (rebind without closing) or reopen it in an "
                f"after_in_child hook",
            )

    def _report(self, result: AnalysisResult, rel: str, lineno: int,
                message: str) -> None:
        result.findings.append(Finding(
            path=rel, line=lineno, col=1, checker=self.name,
            message=message,
        ))
