"""``arcs-analyze``: the repository's unified AST static analysis.

A plugin framework (``tools.analyze.driver``) parses each source file
once and dispatches the AST to every registered checker
(``tools.analyze.checkers``), so adding an invariant costs one plugin,
not one more full-tree walker.  Configuration lives in
``pyproject.toml`` under ``[tool.arcs-analyze]``; findings are
line-suppressible with ``# arcs-analyze: ignore[checker-name]``.

Run it as ``python -m tools.analyze --all`` (CI), pass file paths
(pre-commit), or call :func:`run_analysis` from other tooling —
``benchmarks/perf_budget.py`` gates its timings on the ``determinism``
checker this way.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

from pathlib import Path

from tools.analyze.checkers import ALL_CHECKERS, checker_classes
from tools.analyze.config import (
    AnalyzeConfig,
    CheckerConfig,
    load_config,
)
from tools.analyze.driver import (
    Analysis,
    AnalysisResult,
    Checker,
    Finding,
)

__all__ = [
    "ALL_CHECKERS",
    "Analysis",
    "AnalysisResult",
    "AnalyzeConfig",
    "Checker",
    "CheckerConfig",
    "Finding",
    "checker_classes",
    "load_config",
    "run_analysis",
]

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run_analysis(paths: list[str | Path] | None = None,
                 select: list[str] | None = None,
                 repo_root: str | Path | None = None) -> AnalysisResult:
    """Run the configured checkers and return the result.

    ``paths=None`` scans every configured root (a *complete* run, which
    additionally enables the cross-file orphan checks); a list of paths
    restricts scanning to those files.  ``select`` names a checker
    subset.
    """
    root = Path(repo_root) if repo_root is not None else _REPO_ROOT
    config = load_config(root)
    analysis = Analysis(config, checker_classes(select))
    return analysis.run(paths)
