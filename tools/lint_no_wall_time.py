#!/usr/bin/env python
"""Lint: no ``time.time()`` in library or benchmark code.

Durations measured with the wall clock jump with NTP slews and DST and
make perf numbers irreproducible; all timings must use the monotonic
``time.perf_counter()`` (what `repro.obs` is built on).  The only
legitimate use of ``time.time()`` is an absolute *timestamp* for humans
(e.g. a report's "generated at" field); waive those lines explicitly
with a trailing ``# wall-clock: ok`` comment.

This walks the AST — it catches ``time.time()``, ``import time as t;
t.time()``, and ``from time import time; time()`` — and fails listing
every unwaived ``file:line``.

Usage: ``python tools/lint_no_wall_time.py [src/repro benchmarks ...]``
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

WAIVER = "# wall-clock: ok"


def _wall_time_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names under which the time module / time.time are reachable."""
    module_names: set[str] = set()
    function_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    module_names.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    function_names.add(alias.asname or "time")
    return module_names, function_names


def wall_time_calls(path: Path) -> list[int]:
    """Line numbers of unwaived wall-clock timing calls in a file."""
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    module_names, function_names = _wall_time_aliases(tree)
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_wall_time = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in module_names
        ) or (
            isinstance(func, ast.Name) and func.id in function_names
        )
        if not is_wall_time:
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if WAIVER not in line:
            offenders.append(node.lineno)
    return offenders


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv[1:]] or [
        Path("src/repro"), Path("benchmarks")
    ]
    failures = []
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            for lineno in wall_time_calls(path):
                failures.append(f"{path}:{lineno}")
    if failures:
        print("wall-clock timing calls (use time.perf_counter(); waive "
              f"genuine timestamps with '{WAIVER}'):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    roots_text = ", ".join(str(root) for root in roots)
    print(f"no unwaived time.time() calls under {roots_text}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
