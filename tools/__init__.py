"""Developer tooling for the ARCS repository (not shipped with repro)."""
