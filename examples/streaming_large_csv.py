"""Constant-memory ingestion of a large CSV (paper Figure 15's premise).

ARCS "requires only a constant amount of main memory regardless of the
size of the database" because the binner streams tuples into the
fixed-size BinArray.  This example writes a multi-hundred-thousand-row
CSV to disk, streams it back in bounded chunks, and shows that the
resident state (the BinArray) is the same few hundred KiB it would be
for a table 100x smaller — then fits the segmentation from those counts
alone.

Run:  python examples/streaming_large_csv.py
"""

import tempfile
import time
from pathlib import Path

import repro
from repro.binning.binner import Binner
from repro.core.clusterer import GridClusterer
from repro.core.optimizer import segmentation_from_outcome
from repro.data.io import stream_csv, write_csv
from repro.data.synthetic import DEMOGRAPHIC_ATTRIBUTES, GROUP_ATTRIBUTE

N_TUPLES = 300_000
CHUNK_ROWS = 20_000


def main() -> None:
    specs = list(DEMOGRAPHIC_ATTRIBUTES) + [GROUP_ATTRIBUTE]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "customers.csv"
        print(f"writing {N_TUPLES:,} tuples to {path.name} ...")
        table = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=N_TUPLES, seed=17)
        )
        write_csv(table, path)
        print(f"on disk: {path.stat().st_size / 1e6:.1f} MB")

        # Fit layouts on a small prefix (declared domains drive the
        # equi-width edges, so any schema-true sample works), then
        # stream the file through in bounded chunks.
        reference = table.head(1_000)
        binner = Binner.fit(reference, "age", "salary", "group", 50, 50)
        del table  # from here on, only the stream and the BinArray

        start = time.perf_counter()
        n_chunks = 0
        for chunk in stream_csv(path, specs, chunk_rows=CHUNK_ROWS):
            binner.consume(chunk)
            n_chunks += 1
        elapsed = time.perf_counter() - start

        bin_array = binner.bin_array
        resident_kib = (
            bin_array.counts.nbytes + bin_array.totals.nbytes
        ) / 1024
        print(f"streamed {bin_array.n_total:,} tuples in {n_chunks} "
              f"chunks of {CHUNK_ROWS:,} rows: {elapsed:.1f}s")
        print(f"resident state: {resident_kib:.0f} KiB of counters "
              f"(independent of |D|)")

        code = binner.rhs_encoding.code_of("A")
        outcome = GridClusterer().cluster(bin_array, code, 0.0002, 0.7)
        segmentation = segmentation_from_outcome(
            outcome, bin_array, code
        )
        print("\nsegmentation mined from the streamed counts:")
        print(segmentation.describe())


if __name__ == "__main__":
    main()
