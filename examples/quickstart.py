"""Quickstart: mine clustered association rules from synthetic data.

Reproduces the paper's headline experiment in a few lines: generate
Function 2 demographic data (50k tuples, 5% perturbation), run ARCS on
the (age, salary) -> group criterion, and print the three clustered
rules it recovers.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # The paper's data: Function 2, 50k tuples, 5% perturbation.
    config = repro.SyntheticConfig(
        n_tuples=50_000, function_id=2, perturbation=0.05, seed=42
    )
    table = repro.generate_synthetic(config)
    print(f"generated {len(table):,} tuples over "
          f"{len(table.attribute_names)} attributes")

    # Fully automated: no support/confidence thresholds to pick.
    arcs = repro.ARCS()
    result = arcs.fit(table, "age", "salary", "group", "A")

    print("\nclustered association rules for group = A:")
    print(result.segmentation.describe())
    print(f"\nwinning thresholds: {result.best_trial}")
    print(f"optimizer ran {len(result.history)} trials "
          f"(stopped by: {result.stopped_by})")

    # Re-mining at different thresholds touches no data (paper: "nearly
    # instantaneous").  A lower confidence floor admits fuzzier cells.
    relaxed = result.remine(min_support=0.0001, min_confidence=0.5)
    print(f"\nre-mined at confidence >= 0.5: {len(relaxed)} rules "
          "(no data pass needed)")


if __name__ == "__main__":
    main()
