"""The paper's motivating scenario: segmenting a customer database.

A direct-mail company rates its customers "excellent", "above average"
or "average" by profitability and wants a *segmentation*: readable
rules over demographic attributes that characterise the excellent
customers, to target look-alike prospects (paper Section 1).

This example builds such a customer table (three rating groups with
planted structure in age x income), runs ARCS once per criterion value,
and prints a segmentation per rating — including the re-use of one
BinArray across criterion values the paper highlights ("we can compute
an entirely new segmentation for a different value of the segmentation
criteria without the need to re-bin the original data").

Run:  python examples/marketing_segmentation.py
"""

import numpy as np

import repro
from repro.analysis.selection import rank_attribute_pairs
from repro.data.schema import Table, categorical, quantitative

RATINGS = ("excellent", "above average", "average")


def build_customer_table(n: int = 40_000, seed: int = 7) -> Table:
    """Synthetic customer base with planted rating structure.

    Excellent customers concentrate in two (age, income) pockets:
    established high earners (45-60, 80k-140k) and young professionals
    (25-35, 60k-100k).  Above-average customers ring those pockets;
    everyone else is average.  5% label noise keeps it honest.
    """
    rng = np.random.default_rng(seed)
    age = rng.uniform(18, 75, n)
    income = rng.uniform(10_000, 160_000, n)
    tenure = rng.uniform(0, 20, n)  # years as a customer (no signal)

    established = (age >= 45) & (age < 60) & (income >= 80_000) & (
        income < 140_000
    )
    young_pro = (age >= 25) & (age < 35) & (income >= 60_000) & (
        income < 100_000
    )
    ring = (
        (age >= 40) & (age < 65) & (income >= 60_000) & (income < 150_000)
    ) & ~established

    rating = np.full(n, "average", dtype=object)
    rating[ring] = "above average"
    rating[established | young_pro] = "excellent"
    noise = rng.random(n) < 0.05
    shuffle = rng.choice(RATINGS, size=n)
    rating[noise] = shuffle[noise]

    return Table.from_columns(
        [quantitative("age", 18, 75),
         quantitative("income", 10_000, 160_000),
         quantitative("tenure", 0, 20),
         categorical("rating", RATINGS)],
        {"age": age, "income": income, "tenure": tenure,
         "rating": rating.tolist()},
    )


def main() -> None:
    customers = build_customer_table()
    print(f"customer base: {len(customers):,} records")

    # Which attribute pair carries the rating signal?  (Section 5's
    # information-gain selection; here it confirms age x income.)
    ranked = rank_attribute_pairs(
        customers, ["age", "income", "tenure"], "rating"
    )
    print("\nattribute pairs by joint information gain:")
    for gain, a, b in ranked:
        print(f"  {a} x {b}: {gain:.3f} bits")
    _, x_attr, y_attr = ranked[0]

    # One ARCS fit per criterion value.  The binner runs per fit here
    # for clarity; the BinArray it builds holds counts for every rating
    # at once, which is what makes multi-criterion segmentation cheap.
    arcs = repro.ARCS()
    for rating in RATINGS:
        result = arcs.fit(customers, x_attr, y_attr, "rating", rating)
        print(f"\nsegmentation for rating = {rating!r} "
              f"({len(result.segmentation)} rules, "
              f"error {result.best_trial.report.error_rate:.3f}):")
        print(result.segmentation.describe())


if __name__ == "__main__":
    main()
