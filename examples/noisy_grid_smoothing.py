"""Watch the clustering pipeline work on a noisy grid (paper Figure 7).

Mines a rule grid from perturbed data with outliers, then shows each
pipeline stage as ASCII art: the raw grid (holes, jagged edges, outlier
specks), the low-pass-smoothed grid, and the BitOp clusters drawn on
top — with the pruning step removing the leftover slivers.

Run:  python examples/noisy_grid_smoothing.py
"""

import repro
from repro.binning import bin_table
from repro.core.bitop import BitOpClusterer
from repro.core.grid import RuleGrid
from repro.core.merging import merge_clusters
from repro.core.pruning import prune_clusters
from repro.core.smoothing import smooth_binary
from repro.mining.engine import rule_pairs
from repro.viz.ascii import render_grid, render_side_by_side

N_BINS = 30


def main() -> None:
    table = repro.generate_synthetic(
        repro.SyntheticConfig(
            n_tuples=10_000, function_id=2, perturbation=0.05,
            outlier_fraction=0.05, seed=31,
        )
    )
    binner = bin_table(table, "age", "salary", "group",
                       n_bins_x=N_BINS, n_bins_y=N_BINS)
    code = binner.rhs_encoding.code_of("A")

    pairs = rule_pairs(binner.bin_array, code,
                       min_support=0.0004, min_confidence=0.5)
    raw = RuleGrid.from_pairs(pairs, N_BINS, N_BINS)
    smoothed = smooth_binary(raw)

    print("the mined grid, before and after the low-pass filter:\n")
    print(render_side_by_side(raw, smoothed, "(a) raw", "(b) smoothed"))
    print(f"\nset cells {raw.n_set} -> {smoothed.n_set}")

    clusters = BitOpClusterer().cluster(smoothed)
    merged = merge_clusters(clusters, smoothed)
    report = prune_clusters(merged, (N_BINS, N_BINS), fraction=0.01)
    print(f"\nBitOp found {len(clusters)} rectangles; merging "
          f"consolidated them to {len(merged)}; pruning kept "
          f"{len(report.kept)} (dropped {report.n_pruned} slivers)\n")

    print(render_grid(smoothed, report.kept,
                      x_label="age bins", y_label="salary bins"))
    print("\nlegend: '#' rule cell, '@' rule cell inside a cluster,")
    print("        'o' cluster cell the smoothing filled in")


if __name__ == "__main__":
    main()
