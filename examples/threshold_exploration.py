"""Interactive-style threshold exploration on a resident BinArray.

The paper's systems claim: once the single pass has filled the BinArray,
"we can apply different support or confidence thresholds without
reexamining the data ... changing thresholds is nearly instantaneous."

This example sweeps a grid of threshold pairs over one BinArray, prints
a text heatmap of how many clustered rules each pair yields, and times
the whole sweep — dozens of re-minings in well under a second.  It also
persists the BinArray and re-mines from the file, the cross-session
version of the same workflow (``arcs remine`` exposes it on the CLI).
"""

import tempfile
import time
from pathlib import Path

import repro
from repro.binning import bin_table
from repro.core.clusterer import GridClusterer
from repro.core.optimizer import segmentation_from_outcome
from repro.persistence import load_bin_array, save_bin_array

SUPPORTS = [0.00005, 0.0001, 0.0002, 0.0005, 0.001, 0.002]
CONFIDENCES = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


def main() -> None:
    table = repro.generate_synthetic(
        repro.SyntheticConfig(n_tuples=50_000, function_id=2,
                              perturbation=0.05, seed=42)
    )
    start = time.perf_counter()
    binner = bin_table(table, "age", "salary", "group", 50, 50)
    bin_seconds = time.perf_counter() - start
    print(f"one pass over {len(table):,} tuples: {bin_seconds:.2f}s")

    code = binner.rhs_encoding.code_of("A")
    clusterer = GridClusterer()

    start = time.perf_counter()
    counts = {}
    for support in SUPPORTS:
        for confidence in CONFIDENCES:
            outcome = clusterer.cluster(
                binner.bin_array, code, support, confidence
            )
            counts[(support, confidence)] = outcome.n_rules
    sweep_seconds = time.perf_counter() - start
    n_pairs = len(SUPPORTS) * len(CONFIDENCES)
    print(f"{n_pairs} re-minings: {sweep_seconds:.2f}s "
          f"({1000 * sweep_seconds / n_pairs:.1f} ms each) — "
          "no data pass, ever\n")

    header = "support \\ conf " + "".join(
        f"{confidence:>6.1f}" for confidence in CONFIDENCES
    )
    print("clustered rules per threshold pair:")
    print(header)
    for support in SUPPORTS:
        row = "".join(
            f"{counts[(support, confidence)]:>6d}"
            for confidence in CONFIDENCES
        )
        print(f"{support:>14.5f}{row}")

    # The cross-session version: persist, reload, re-mine.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "binarray.npz"
        save_bin_array(binner.bin_array, path)
        loaded = load_bin_array(path)
        outcome = clusterer.cluster(loaded, code, 0.0002, 0.7)
        segmentation = segmentation_from_outcome(outcome, loaded, code)
        print(f"\nre-mined from {path.name} "
              f"({path.stat().st_size // 1024} KiB on disk):")
        print(segmentation.describe())


if __name__ == "__main__":
    main()
