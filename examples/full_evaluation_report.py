"""One-stop evaluation: everything the library can say about one fit.

Fits ARCS on the paper's headline setting and prints the consolidated
evaluation report — rules, thresholds, the verifier's estimate with its
noise-floor decomposition, the exact region accuracy against the
generating function, and the optimizer's full search transcript.

Run:  python examples/full_evaluation_report.py
"""

import repro
from repro.analysis.report import evaluation_report
from repro.data.functions import true_regions


def main() -> None:
    table = repro.generate_synthetic(
        repro.SyntheticConfig(n_tuples=50_000, function_id=2,
                              perturbation=0.05, seed=42)
    )
    result = repro.ARCS().fit(table, "age", "salary", "group", "A")
    print(evaluation_report(
        result,
        table=table,
        function_id=2,
        true_regions=true_regions(2),
        x_range=(20, 80),
        y_range=(20_000, 150_000),
    ))


if __name__ == "__main__":
    main()
