"""ARCS vs a C4.5-style classifier on the same segmentation task.

The paper's Section 4.2 comparison, runnable: fit both systems on the
same perturbed Function 2 data (with and without 10% outliers), then
compare held-out error, rule counts and wall-clock time — the three
axes of paper Figures 11-14 and Table 2.

Run:  python examples/compare_with_c45.py
"""

import time

import numpy as np

import repro
from repro.baselines import C45Rules, C45Tree, classification_error
from repro.core.optimizer import OptimizerConfig

# auto_bins sizes the grid to the 10k-tuple table (the paper's fixed 50
# bins assume 20k+), and the finer confidence axis resolves the narrow
# usable band that 10% outliers leave.
ARCS_CONFIG = repro.ARCSConfig(
    auto_bins=True,
    optimizer=OptimizerConfig(max_support_levels=8,
                              max_confidence_levels=10),
)


def run_comparison(outlier_fraction: float, seed: int) -> None:
    train = repro.generate_synthetic(
        repro.SyntheticConfig(
            n_tuples=10_000, function_id=2, perturbation=0.05,
            outlier_fraction=outlier_fraction, seed=seed,
        )
    )
    test = repro.generate_synthetic(
        repro.SyntheticConfig(
            n_tuples=5_000, function_id=2, perturbation=0.05,
            outlier_fraction=outlier_fraction, seed=seed + 1,
        )
    )

    start = time.perf_counter()
    arcs_result = repro.ARCS(ARCS_CONFIG).fit(
        train, "age", "salary", "group", "A"
    )
    arcs_seconds = time.perf_counter() - start
    covered = arcs_result.segmentation.covers_table(test)
    actual = np.asarray(
        [label == "A" for label in test.column("group")]
    )
    arcs_error = float(np.mean(covered != actual))

    start = time.perf_counter()
    tree = C45Tree().fit(train, ["age", "salary"], "group")
    rules = C45Rules.from_tree(tree, train)
    c45_seconds = time.perf_counter() - start
    c45_error = classification_error(
        rules.predict(test), test, "group", "A"
    )

    print(f"\n--- outliers = {outlier_fraction:.0%} ---")
    print(f"{'':>14}  {'error':>7}  {'rules':>6}  {'seconds':>8}")
    print(f"{'ARCS':>14}  {arcs_error:7.4f}  "
          f"{len(arcs_result.segmentation):6d}  {arcs_seconds:8.2f}")
    print(f"{'C4.5 + RULES':>14}  {c45_error:7.4f}  "
          f"{len(rules):6d}  {c45_seconds:8.2f}")

    print("\nARCS segmentation:")
    print(arcs_result.segmentation.describe())
    print(f"\nfirst C4.5 rules for group A "
          f"(of {len(rules.rules_for('A'))}):")
    for rule in rules.rules_for("A")[:4]:
        print(f"  {rule}")


def main() -> None:
    for outlier_fraction, seed in ((0.0, 10), (0.10, 20)):
        run_comparison(outlier_fraction, seed)


if __name__ == "__main__":
    main()
