"""Beyond two attributes: the Section 5 multi-dimensional extension.

The paper proposes growing clusters to more than two attributes "by
iteratively combining overlapping sets of two-attribute clustered
association rules".  This example plants a 3-D box of Group A tuples in
(age, salary, loan), fits ARCS on the two projections (age x salary and
salary x loan), combines them, and verifies the recovered 3-D rule.

It also demonstrates the categorical-LHS extension on a region column.

Run:  python examples/multidim_segmentation.py
"""

import numpy as np

import repro
from repro.core.arcs import ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.schema import Table, categorical, quantitative
from repro.extensions import combine_segmentations, fit_categorical_lhs

FAST = ARCSConfig(
    optimizer=OptimizerConfig(max_support_levels=6,
                              max_confidence_levels=6),
)


def build_3d_table(n: int = 30_000, seed: int = 3) -> Table:
    # The box is wide in every dimension on purpose: a 2-D projection's
    # confidence is diluted by the box's extent along the projected-out
    # axis, and ARCS needs reasonably confident projections to cluster.
    rng = np.random.default_rng(seed)
    age = rng.uniform(20, 80, n)
    salary = rng.uniform(20_000, 150_000, n)
    loan = rng.uniform(0, 500_000, n)
    in_box = (
        (age >= 25) & (age < 65)
        & (salary >= 40_000) & (salary < 120_000)
        & (loan >= 50_000) & (loan < 450_000)
    )
    labels = np.where(in_box, "A", "other")
    return Table.from_columns(
        [quantitative("age", 20, 80),
         quantitative("salary", 20_000, 150_000),
         quantitative("loan", 0, 500_000),
         categorical("group", ("A", "other"))],
        {"age": age, "salary": salary, "loan": loan,
         "group": labels.tolist()},
    )


def three_dimensional_demo() -> None:
    table = build_3d_table()
    print(f"planted a 3-D Group-A box in {len(table):,} tuples")

    arcs = repro.ARCS(FAST)
    seg_age_salary = arcs.fit(
        table, "age", "salary", "group", "A"
    ).segmentation
    seg_salary_loan = arcs.fit(
        table, "salary", "loan", "group", "A"
    ).segmentation

    print("\nprojection 1 (age x salary):")
    print(seg_age_salary.describe())
    print("\nprojection 2 (salary x loan):")
    print(seg_salary_loan.describe())

    boxes = combine_segmentations(
        seg_age_salary, seg_salary_loan, table,
        min_support=0.05, min_confidence=0.8,
    )
    print(f"\ncombined {len(boxes)} verified 3-D rule(s):")
    for box in boxes:
        print(f"  {box}")


def categorical_lhs_demo() -> None:
    rng = np.random.default_rng(9)
    n = 20_000
    regions = ("north", "south", "east", "west", "centre")
    region = rng.choice(regions, size=n)
    income = rng.uniform(0, 100_000, n)
    dense = np.isin(region, ("north", "east"))
    labels = np.where(
        dense & (income >= 40_000) & (income < 80_000), "A", "other"
    )
    table = Table.from_columns(
        [categorical("region", regions),
         quantitative("income", 0, 100_000),
         categorical("group", ("A", "other"))],
        {"region": region.tolist(), "income": income,
         "group": labels.tolist()},
    )

    rules, ordering, _ = fit_categorical_lhs(
        table, "region", "income", "group", "A", config=FAST
    )
    print("\ncategorical LHS demo — regions ordered by Group-A density:")
    print(f"  {ordering}")
    print("clustered rules over region sets:")
    for rule in rules:
        print(f"  {rule}")


def main() -> None:
    three_dimensional_demo()
    categorical_lhs_demo()


if __name__ == "__main__":
    main()
